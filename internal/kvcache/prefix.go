package kvcache

import (
	"encoding/binary"
	"fmt"
)

// Prefix caching (RadixAttention / vLLM automatic-prefix-caching
// style): prompt KV blocks are content-addressed, so requests sharing
// a prompt prefix (system prompts, few-shot templates, replayed
// traces) reuse the blocks an earlier request already computed instead
// of re-prefilling them. A physical block then has a reference count —
// the number of sequence block tables pointing at it — and a block
// whose count drops to zero is not returned to the free list but
// parked in an LRU cached pool, still indexed by the prefix trie, so a
// later identical prompt can resurrect it with a refcount bump.
// Allocation pressure reclaims cached blocks LRU-first, preferring
// trie leaves so interior prefix chains stay matchable.
//
// Sharing is copy-on-write: writes only ever land in a sequence's last,
// partially filled block, and Extend replaces that block with a private
// copy before growing whenever it is shared (refcount > 1) or still
// advertised by the trie. Full interior blocks are immutable once
// written, so they are shared freely without copies.

// prefixNode is one block of cached prompt content in the prefix trie.
// The path from the root to a node spells a block-aligned prompt
// prefix; children are keyed by the exact token content of the next
// block, so matching is collision-free content addressing. The child
// map is allocated on first insertion — most nodes are leaves (unique
// prompt tails), and reads of a nil map are free.
type prefixNode struct {
	parent   *prefixNode
	children map[string]*prefixNode // nil until the first child registers
	key      string                 // content key in parent.children ("" for the root)
	block    int                    // physical block holding this content (-1 while frozen)
	frozenID int                    // compressed-store key while frozen (0 = not frozen)
	lastUse  int64                  // LRU tick of the last claim/commit
}

// addChild links c under n, allocating the child map lazily.
func (n *prefixNode) addChild(key string, c *prefixNode) {
	if n.children == nil {
		n.children = make(map[string]*prefixNode)
	}
	n.children[key] = c
}

// prefixIndex is the Manager's prefix-cache state.
type prefixIndex struct {
	root      *prefixNode
	byBlock   map[int]*prefixNode // registered blocks (owned or cached)
	cached    map[int]*prefixNode // refcount-zero registered blocks (reclaimable)
	frozen    map[int]*prefixNode // frozenID → compressed cold nodes (compressed cache only)
	committed map[int]commitMark  // seqID → deepest committed trie position
	cap       int                 // max pooled (cached + frozen) blocks retained (0 = unbounded)
	tick      int64
	shared    int // blocks with refcount > 1, maintained on transitions

	ctl *cacheCtl // adaptive pool sizing (nil = static cap)

	walkScratch []*prefixNode // reusable matched-chain buffer for walk

	hits        int64 // ClaimPrefix calls that matched ≥ 1 block
	tokensSaved int64 // prompt tokens served from cache
	evictions   int64 // cached blocks reclaimed under pressure or cap
	cowCopies   int64 // shared blocks copied before a write
	walks       int64 // trie walks executed (lookup, claim, probe)
}

// commitMark remembers how deep a sequence's prompt has already been
// committed into the trie, so per-chunk CommitPrefix calls resume the
// walk instead of re-hashing every block from the root each time.
type commitMark struct {
	node *prefixNode
	full int // full blocks committed so far
}

// contentKey maps a block's token content to an exact map key; the Go
// map hashes it, giving content-addressed lookup without collisions.
func contentKey(tokens []int) string {
	b := make([]byte, 8*len(tokens))
	for i, t := range tokens {
		binary.LittleEndian.PutUint64(b[i*8:], uint64(t))
	}
	return string(b)
}

// HashedPrompt is a tokenised prompt whose per-block content keys were
// computed once up front, so every later trie walk over it — the
// admission capacity check, the claim, and each per-chunk commit — is
// pure map lookups with no hashing. Build it with Manager.HashPrompt
// and reuse it for the request's whole lifetime; the keys depend only
// on the token content, never on trie state.
type HashedPrompt struct {
	tokens []int
	keys   []string // one key per full block of the prompt
}

// Len returns the prompt's token count.
func (hp HashedPrompt) Len() int { return len(hp.tokens) }

// Tokens returns the underlying token ids (not a copy).
func (hp HashedPrompt) Tokens() []int { return hp.tokens }

// HashPrompt precomputes a prompt's per-block content keys at the
// manager's block granularity.
func (m *Manager) HashPrompt(tokens []int) HashedPrompt {
	b := m.cfg.BlockTokens
	keys := make([]string, len(tokens)/b)
	for i := range keys {
		keys[i] = contentKey(tokens[i*b : (i+1)*b])
	}
	return HashedPrompt{tokens: tokens, keys: keys}
}

// EnablePrefixCache turns on cross-request prefix reuse. capBlocks
// bounds how many refcount-zero blocks the cache may keep parked
// (0 = unbounded: every free block is a candidate prefix block). It
// must be called before any allocation.
func (m *Manager) EnablePrefixCache(capBlocks int) error {
	if capBlocks < 0 {
		return fmt.Errorf("kvcache: prefix cache capacity %d must be non-negative", capBlocks)
	}
	if len(m.seqs) != 0 || len(m.freeList) != m.cfg.TotalBlocks {
		return fmt.Errorf("kvcache: prefix cache must be enabled on an empty manager")
	}
	m.prefix = &prefixIndex{
		root:      &prefixNode{block: -1},
		byBlock:   make(map[int]*prefixNode),
		cached:    make(map[int]*prefixNode),
		committed: make(map[int]commitMark),
		cap:       capBlocks,
	}
	m.refcnt = make([]int, m.cfg.TotalBlocks)
	return nil
}

// PrefixCacheEnabled reports whether cross-request prefix reuse is on.
func (m *Manager) PrefixCacheEnabled() bool { return m.prefix != nil }

// PrefixCacheCap returns the cached-pool bound (0 = unbounded).
func (m *Manager) PrefixCacheCap() int {
	if m.prefix == nil {
		return 0
	}
	return m.prefix.cap
}

// SetPrefixCacheCap resizes the cached-pool bound at runtime
// (0 = unbounded). Shrinking evicts LRU leaf-first immediately, so the
// pool obeys the new bound on return — the adaptive sizing controller's
// actuator, also usable directly by operators.
func (m *Manager) SetPrefixCacheCap(capBlocks int) error {
	if m.prefix == nil {
		return fmt.Errorf("kvcache: prefix cache not enabled")
	}
	if capBlocks < 0 {
		return fmt.Errorf("kvcache: prefix cache capacity %d must be non-negative", capBlocks)
	}
	m.prefix.cap = capBlocks
	m.gen++
	m.enforceCap()
	return nil
}

// CachedBlocks returns the number of refcount-zero blocks parked in
// the prefix cache (reclaimable on demand).
func (m *Manager) CachedBlocks() int {
	if m.prefix == nil {
		return 0
	}
	return len(m.prefix.cached)
}

// SharedBlocks returns the number of physical blocks referenced by
// more than one sequence — capacity that deduplication is saving right
// now. Maintained on refcount transitions (stats poll every scheduler
// iteration; a scan would be O(TotalBlocks)).
func (m *Manager) SharedBlocks() int {
	if m.prefix == nil {
		return 0
	}
	return m.prefix.shared
}

// PrefixHits returns the number of ClaimPrefix calls that matched at
// least one cached block.
func (m *Manager) PrefixHits() int64 {
	if m.prefix == nil {
		return 0
	}
	return m.prefix.hits
}

// PrefixTokensSaved returns the total prompt tokens served from the
// cache instead of being re-prefilled.
func (m *Manager) PrefixTokensSaved() int64 {
	if m.prefix == nil {
		return 0
	}
	return m.prefix.tokensSaved
}

// PrefixEvictions returns the number of cached blocks reclaimed (by
// allocation pressure or the capacity bound).
func (m *Manager) PrefixEvictions() int64 {
	if m.prefix == nil {
		return 0
	}
	return m.prefix.evictions
}

// Walks returns the lifetime count of prefix-trie walks (lookups,
// claims and controller probes). Schedulers memoize lookups per trie
// generation; this counter is how tests prove the duplicated admission
// walk stays eliminated.
func (m *Manager) Walks() int64 {
	if m.prefix == nil {
		return 0
	}
	return m.prefix.walks
}

// CowCopies returns the number of copy-on-write block copies taken
// before a write into a shared block.
func (m *Manager) CowCopies() int64 {
	if m.prefix == nil {
		return 0
	}
	return m.prefix.cowCopies
}

// Lookup walks the prefix trie over the prompt's full blocks and
// returns how many leading tokens are already cached. The match is
// block-aligned except when the whole prompt is cached, where it is
// capped at len(prompt)−1 so the sequence still computes (at least)
// its final prompt token — the position that samples the first output
// token. Lookup does not claim anything; ClaimPrefix does.
func (m *Manager) Lookup(prompt []int) int {
	matched, _ := m.LookupCost(prompt)
	return matched
}

// LookupCost is Lookup plus the admission-capacity price of the
// match: resurrect counts the matched blocks currently parked in the
// refcount-zero cached pool, which FreeBlocks reports as free
// capacity. Claiming those blocks removes them from the pool, so an
// admission check must charge them like fresh allocations; only
// matched blocks still referenced by live sequences are supplied for
// free.
func (m *Manager) LookupCost(prompt []int) (matched, resurrect int) {
	if m.prefix == nil {
		return 0, 0
	}
	return m.LookupCostHashed(m.HashPrompt(prompt))
}

// LookupCostHashed is LookupCost over a prompt whose block keys were
// precomputed with HashPrompt, so the walk hashes nothing.
func (m *Manager) LookupCostHashed(hp HashedPrompt) (matched, resurrect int) {
	if m.prefix == nil {
		return 0, 0
	}
	matched, nodes := m.walk(hp)
	for _, n := range nodes {
		// Frozen blocks hold no physical block, so claiming one pops a
		// fresh block for the decompressed content — the same charge as
		// resurrecting a parked block out of the reclaimable pool.
		if n.block < 0 || m.refcnt[n.block] == 0 {
			resurrect++
		}
	}
	return matched, resurrect
}

// walk returns the capped matched-token count and the matched blocks.
// The returned slice is the index's reusable scratch, valid until the
// next walk; callers consume it before any further lookup.
func (m *Manager) walk(hp HashedPrompt) (int, []*prefixNode) {
	m.prefix.walks++
	b := m.cfg.BlockTokens
	node := m.prefix.root
	matched := 0
	nodes := m.prefix.walkScratch[:0]
	for i := 0; i < len(hp.keys); i++ {
		child := node.children[hp.keys[i]]
		if child == nil {
			break
		}
		nodes = append(nodes, child)
		matched += b
		node = child
	}
	if matched >= len(hp.tokens) && matched > 0 {
		// Fully cached prompt: keep every block claimed but recompute
		// the final token, which partially consumes the tail block —
		// the copy-on-write case once the sequence grows into it.
		matched = len(hp.tokens) - 1
	}
	m.prefix.walkScratch = nodes
	return matched, nodes
}

// ClaimPrefix admits a new sequence whose prompt's cached prefix is
// claimed by reference instead of allocated: each matched block's
// refcount is bumped (resurrecting it from the cached pool when it was
// parked there) and the sequence's block table starts with the shared
// blocks. It returns the matched token count; 0 means no match and no
// sequence was created — the caller falls back to plain Allocate.
func (m *Manager) ClaimPrefix(seqID int, prompt []int) (int, error) {
	if m.prefix == nil {
		return 0, fmt.Errorf("kvcache: prefix cache not enabled")
	}
	return m.ClaimPrefixHashed(seqID, m.HashPrompt(prompt))
}

// ClaimPrefixHashed is ClaimPrefix over a prehashed prompt.
func (m *Manager) ClaimPrefixHashed(seqID int, hp HashedPrompt) (int, error) {
	if m.prefix == nil {
		return 0, fmt.Errorf("kvcache: prefix cache not enabled")
	}
	if _, dup := m.seqs[seqID]; dup {
		return 0, fmt.Errorf("kvcache: sequence %d already allocated", seqID)
	}
	matched, nodes := m.walk(hp)
	if matched == 0 {
		return 0, nil
	}
	st := getSeqState()
	for range nodes {
		st.table = append(st.table, -1)
	}
	// Claim the physically backed matches first: bumping their refcounts
	// takes them out of the reclaimable pool, so the thaw pops below can
	// never evict part of the chain being claimed.
	for i, n := range nodes {
		if n.block < 0 {
			continue
		}
		if m.refcnt[n.block] == 0 {
			delete(m.prefix.cached, n.block)
		}
		m.refcnt[n.block]++
		if m.refcnt[n.block] == 2 {
			m.prefix.shared++
		}
		m.prefix.tick++
		n.lastUse = m.prefix.tick
		st.table[i] = n.block
	}
	// Then restore the frozen matches: each thaw pops a fresh physical
	// block (charged as a resurrection by LookupCost) and decompresses
	// the cold content into it.
	for i, n := range nodes {
		if st.table[i] >= 0 {
			continue
		}
		if err := m.thaw(n); err != nil {
			// Unreachable (the store holds what freeze put there), but a
			// failed thaw must not leak the chain claimed so far.
			for _, b := range st.table {
				if b >= 0 {
					m.releaseBlock(b)
				}
			}
			putSeqState(st)
			m.gen++
			return 0, err
		}
		m.prefix.tick++
		n.lastUse = m.prefix.tick
		st.table[i] = n.block
	}
	st.tokens = matched
	m.seqs[seqID] = st
	// The claimed chain is already committed content: later CommitPrefix
	// calls resume past it instead of re-walking from the root.
	m.prefix.committed[seqID] = commitMark{node: nodes[len(nodes)-1], full: len(nodes)}
	m.prefix.hits++
	m.prefix.tokensSaved += int64(matched)
	m.gen++ // resurrections and refcount bumps change later lookup costs
	return matched, nil
}

// CommitPrefix registers the sequence's fully prefilled full prompt
// blocks in the trie so later requests can reuse them. Blocks whose
// content is already registered under another physical block keep the
// sequence's private copy unregistered (first writer wins); the walk
// continues through the existing chain so deeper blocks still
// register. Safe — and cheap — to call after every prefill chunk: the
// walk resumes from the sequence's last committed depth, so only new
// full blocks are visited (re-walking from the root would make a
// small-chunk prefill quadratic in prompt blocks).
func (m *Manager) CommitPrefix(seqID int, prompt []int, prefilled int) error {
	if m.prefix == nil {
		return nil
	}
	return m.CommitPrefixHashed(seqID, m.HashPrompt(prompt), prefilled)
}

// CommitPrefixHashed is CommitPrefix over a prehashed prompt.
func (m *Manager) CommitPrefixHashed(seqID int, hp HashedPrompt, prefilled int) error {
	if m.prefix == nil {
		return nil
	}
	st, ok := m.seqs[seqID]
	if !ok {
		return fmt.Errorf("kvcache: unknown sequence %d", seqID)
	}
	if prefilled > len(hp.tokens) {
		prefilled = len(hp.tokens)
	}
	full := prefilled / m.cfg.BlockTokens
	if full > len(st.table) {
		full = len(st.table)
	}
	node, i := m.prefix.root, 0
	if mark, ok := m.prefix.committed[seqID]; ok && mark.full <= full &&
		m.prefix.byBlock[mark.node.block] == mark.node {
		// Resume past the committed depth; a mark whose node was
		// evicted (unregistered) is stale and falls back to the root.
		node, i = mark.node, mark.full
	}
	registered := false
	for ; i < full; i++ {
		key := hp.keys[i]
		child := node.children[key]
		if child == nil {
			if existing := m.prefix.byBlock[st.table[i]]; existing != nil {
				// The block is already advertised under different
				// content (stale chain after an eviction reshaped the
				// trie). Leave it; do not double-register.
				break
			}
			child = &prefixNode{
				parent: node,
				key:    key,
				block:  st.table[i],
			}
			node.addChild(key, child)
			m.prefix.byBlock[st.table[i]] = child
			registered = true
		}
		m.prefix.tick++
		child.lastUse = m.prefix.tick
		node = child
	}
	if i > 0 {
		m.prefix.committed[seqID] = commitMark{node: node, full: i}
	}
	if registered {
		m.gen++ // freshly advertised content changes later lookups
	}
	return nil
}

// releaseBlock drops one table reference to a block: shared blocks
// stay alive, and a block reaching refcount zero is parked in the
// cached pool when the trie still advertises it, or freed outright.
func (m *Manager) releaseBlock(b int) {
	m.refcnt[b]--
	if m.refcnt[b] == 1 {
		m.prefix.shared--
	}
	if m.refcnt[b] > 0 {
		return
	}
	m.gen++ // a refcount-zero transition changes later resurrect charges
	if node := m.prefix.byBlock[b]; node != nil {
		m.prefix.tick++
		node.lastUse = m.prefix.tick
		if m.compStore != nil && m.freeze(b, node) {
			// Cold content lives on compressed; the physical block is
			// real free capacity again.
			m.freeList = append(m.freeList, b)
			m.enforceCap()
			return
		}
		m.prefix.cached[b] = node
		m.enforceCap()
		return
	}
	m.freeList = append(m.freeList, b)
}

// enforceCap evicts LRU pooled blocks (physically parked and frozen
// alike) until the configured capacity bound holds.
func (m *Manager) enforceCap() {
	if m.prefix.cap <= 0 {
		return
	}
	for len(m.prefix.cached)+len(m.prefix.frozen) > m.prefix.cap {
		if !m.evictOne(true) {
			return // unreachable: the pool is non-empty
		}
	}
}

// evictOne reclaims one pooled block, choosing the least recently used
// trie leaf so interior prefix chains survive; if every pooled node
// has children, the LRU interior node goes and its subtree is
// unregistered (pooled descendants are dropped too, owned descendants
// merely lose their trie advertisement). Allocation pressure passes
// includeFrozen=false — evicting a frozen node frees no physical block,
// so only physically parked victims can relieve a dry free list — while
// cap enforcement scans both pools. Returns false when no candidate
// exists.
func (m *Manager) evictOne(includeFrozen bool) bool {
	var victim *prefixNode
	leaf := false
	consider := func(n *prefixNode) {
		nLeaf := len(n.children) == 0
		switch {
		case victim == nil,
			nLeaf && !leaf,
			nLeaf == leaf && n.lastUse < victim.lastUse:
			victim, leaf = n, nLeaf
		}
	}
	for _, n := range m.prefix.cached {
		consider(n)
	}
	if includeFrozen {
		for _, n := range m.prefix.frozen {
			consider(n)
		}
	}
	if victim == nil {
		return false
	}
	m.unregister(victim)
	return true
}

// unregister detaches a node's whole subtree from the trie, returning
// every physically cached block in it to the free list and dropping
// frozen descendants from the compressed store.
func (m *Manager) unregister(n *prefixNode) {
	delete(n.parent.children, n.key)
	m.gen++ // removed advertisements change later lookups
	var dfs func(*prefixNode)
	dfs = func(x *prefixNode) {
		if x.frozenID != 0 {
			m.compStore.Delete(x.frozenID)
			delete(m.prefix.frozen, x.frozenID)
			x.frozenID = 0
			m.prefix.evictions++
		} else {
			delete(m.prefix.byBlock, x.block)
			if _, parked := m.prefix.cached[x.block]; parked {
				delete(m.prefix.cached, x.block)
				m.freeList = append(m.freeList, x.block)
				m.prefix.evictions++
			}
		}
		for _, c := range x.children {
			dfs(c)
		}
	}
	dfs(n)
}

// cowNeeded reports whether growing the sequence writes into a block
// it must not mutate: the last block is partially filled (the write
// target) and either shared with another sequence or still advertised
// by the trie as cached prefix content.
func (m *Manager) cowNeeded(st *seqState) bool {
	if m.prefix == nil {
		return false
	}
	if st.tokens%m.cfg.BlockTokens == 0 {
		return false // last block full; growth writes fresh blocks only
	}
	last := st.table[len(st.table)-1]
	return m.refcnt[last] > 1 || m.prefix.byBlock[last] != nil
}

// copyOnWrite replaces the sequence's shared last block with a private
// copy (the caller has verified capacity). The shared original keeps
// its other references, or parks in the cached pool when this was the
// only one.
func (m *Manager) copyOnWrite(st *seqState) {
	old := st.table[len(st.table)-1]
	fresh := m.pop()
	m.refcnt[fresh] = 1
	st.table[len(st.table)-1] = fresh
	m.releaseBlock(old)
	m.prefix.cowCopies++
}
