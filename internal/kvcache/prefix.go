package kvcache

import (
	"encoding/binary"
	"fmt"
)

// Prefix caching (RadixAttention / vLLM automatic-prefix-caching
// style): prompt KV blocks are content-addressed, so requests sharing
// a prompt prefix (system prompts, few-shot templates, replayed
// traces) reuse the blocks an earlier request already computed instead
// of re-prefilling them. A physical block then has a reference count —
// the number of sequence block tables pointing at it — and a block
// whose count drops to zero is not returned to the free list but
// parked in an LRU cached pool, still indexed by the prefix trie, so a
// later identical prompt can resurrect it with a refcount bump.
// Allocation pressure reclaims cached blocks LRU-first, preferring
// trie leaves so interior prefix chains stay matchable.
//
// Sharing is copy-on-write: writes only ever land in a sequence's last,
// partially filled block, and Extend replaces that block with a private
// copy before growing whenever it is shared (refcount > 1) or still
// advertised by the trie. Full interior blocks are immutable once
// written, so they are shared freely without copies.

// prefixNode is one block of cached prompt content in the prefix trie.
// The path from the root to a node spells a block-aligned prompt
// prefix; children are keyed by the exact token content of the next
// block, so matching is collision-free content addressing.
type prefixNode struct {
	parent   *prefixNode
	children map[string]*prefixNode
	key      string // content key in parent.children ("" for the root)
	block    int    // physical block holding this content (a full block)
	lastUse  int64  // LRU tick of the last claim/commit
}

// prefixIndex is the Manager's prefix-cache state.
type prefixIndex struct {
	root      *prefixNode
	byBlock   map[int]*prefixNode // registered blocks (owned or cached)
	cached    map[int]*prefixNode // refcount-zero registered blocks (reclaimable)
	committed map[int]commitMark  // seqID → deepest committed trie position
	cap       int                 // max cached blocks retained (0 = unbounded)
	tick      int64
	shared    int // blocks with refcount > 1, maintained on transitions

	hits        int64 // ClaimPrefix calls that matched ≥ 1 block
	tokensSaved int64 // prompt tokens served from cache
	evictions   int64 // cached blocks reclaimed under pressure or cap
	cowCopies   int64 // shared blocks copied before a write
}

// commitMark remembers how deep a sequence's prompt has already been
// committed into the trie, so per-chunk CommitPrefix calls resume the
// walk instead of re-hashing every block from the root each time.
type commitMark struct {
	node *prefixNode
	full int // full blocks committed so far
}

// contentKey maps a block's token content to an exact map key; the Go
// map hashes it, giving content-addressed lookup without collisions.
func contentKey(tokens []int) string {
	b := make([]byte, 8*len(tokens))
	for i, t := range tokens {
		binary.LittleEndian.PutUint64(b[i*8:], uint64(t))
	}
	return string(b)
}

// EnablePrefixCache turns on cross-request prefix reuse. capBlocks
// bounds how many refcount-zero blocks the cache may keep parked
// (0 = unbounded: every free block is a candidate prefix block). It
// must be called before any allocation.
func (m *Manager) EnablePrefixCache(capBlocks int) error {
	if capBlocks < 0 {
		return fmt.Errorf("kvcache: prefix cache capacity %d must be non-negative", capBlocks)
	}
	if len(m.tables) != 0 || len(m.freeList) != m.cfg.TotalBlocks {
		return fmt.Errorf("kvcache: prefix cache must be enabled on an empty manager")
	}
	m.prefix = &prefixIndex{
		root:      &prefixNode{children: make(map[string]*prefixNode), block: -1},
		byBlock:   make(map[int]*prefixNode),
		cached:    make(map[int]*prefixNode),
		committed: make(map[int]commitMark),
		cap:       capBlocks,
	}
	m.refcnt = make([]int, m.cfg.TotalBlocks)
	return nil
}

// PrefixCacheEnabled reports whether cross-request prefix reuse is on.
func (m *Manager) PrefixCacheEnabled() bool { return m.prefix != nil }

// CachedBlocks returns the number of refcount-zero blocks parked in
// the prefix cache (reclaimable on demand).
func (m *Manager) CachedBlocks() int {
	if m.prefix == nil {
		return 0
	}
	return len(m.prefix.cached)
}

// SharedBlocks returns the number of physical blocks referenced by
// more than one sequence — capacity that deduplication is saving right
// now. Maintained on refcount transitions (stats poll every scheduler
// iteration; a scan would be O(TotalBlocks)).
func (m *Manager) SharedBlocks() int {
	if m.prefix == nil {
		return 0
	}
	return m.prefix.shared
}

// PrefixHits returns the number of ClaimPrefix calls that matched at
// least one cached block.
func (m *Manager) PrefixHits() int64 {
	if m.prefix == nil {
		return 0
	}
	return m.prefix.hits
}

// PrefixTokensSaved returns the total prompt tokens served from the
// cache instead of being re-prefilled.
func (m *Manager) PrefixTokensSaved() int64 {
	if m.prefix == nil {
		return 0
	}
	return m.prefix.tokensSaved
}

// PrefixEvictions returns the number of cached blocks reclaimed (by
// allocation pressure or the capacity bound).
func (m *Manager) PrefixEvictions() int64 {
	if m.prefix == nil {
		return 0
	}
	return m.prefix.evictions
}

// CowCopies returns the number of copy-on-write block copies taken
// before a write into a shared block.
func (m *Manager) CowCopies() int64 {
	if m.prefix == nil {
		return 0
	}
	return m.prefix.cowCopies
}

// Lookup walks the prefix trie over the prompt's full blocks and
// returns how many leading tokens are already cached. The match is
// block-aligned except when the whole prompt is cached, where it is
// capped at len(prompt)−1 so the sequence still computes (at least)
// its final prompt token — the position that samples the first output
// token. Lookup does not claim anything; ClaimPrefix does.
func (m *Manager) Lookup(prompt []int) int {
	matched, _ := m.LookupCost(prompt)
	return matched
}

// LookupCost is Lookup plus the admission-capacity price of the
// match: resurrect counts the matched blocks currently parked in the
// refcount-zero cached pool, which FreeBlocks reports as free
// capacity. Claiming those blocks removes them from the pool, so an
// admission check must charge them like fresh allocations; only
// matched blocks still referenced by live sequences are supplied for
// free.
func (m *Manager) LookupCost(prompt []int) (matched, resurrect int) {
	if m.prefix == nil {
		return 0, 0
	}
	matched, nodes := m.walk(prompt)
	for _, n := range nodes {
		if m.refcnt[n.block] == 0 {
			resurrect++
		}
	}
	return matched, resurrect
}

// walk returns the capped matched-token count and the matched blocks.
func (m *Manager) walk(prompt []int) (int, []*prefixNode) {
	b := m.cfg.BlockTokens
	node := m.prefix.root
	matched := 0
	var nodes []*prefixNode
	for matched+b <= len(prompt) {
		child := node.children[contentKey(prompt[matched:matched+b])]
		if child == nil {
			break
		}
		nodes = append(nodes, child)
		matched += b
		node = child
	}
	if matched >= len(prompt) && matched > 0 {
		// Fully cached prompt: keep every block claimed but recompute
		// the final token, which partially consumes the tail block —
		// the copy-on-write case once the sequence grows into it.
		matched = len(prompt) - 1
	}
	return matched, nodes
}

// ClaimPrefix admits a new sequence whose prompt's cached prefix is
// claimed by reference instead of allocated: each matched block's
// refcount is bumped (resurrecting it from the cached pool when it was
// parked there) and the sequence's block table starts with the shared
// blocks. It returns the matched token count; 0 means no match and no
// sequence was created — the caller falls back to plain Allocate.
func (m *Manager) ClaimPrefix(seqID int, prompt []int) (int, error) {
	if m.prefix == nil {
		return 0, fmt.Errorf("kvcache: prefix cache not enabled")
	}
	if _, dup := m.tables[seqID]; dup {
		return 0, fmt.Errorf("kvcache: sequence %d already allocated", seqID)
	}
	matched, nodes := m.walk(prompt)
	if matched == 0 {
		return 0, nil
	}
	table := make([]int, 0, len(nodes))
	for _, n := range nodes {
		if m.refcnt[n.block] == 0 {
			delete(m.prefix.cached, n.block)
		}
		m.refcnt[n.block]++
		if m.refcnt[n.block] == 2 {
			m.prefix.shared++
		}
		m.prefix.tick++
		n.lastUse = m.prefix.tick
		table = append(table, n.block)
	}
	m.tables[seqID] = table
	m.seqTokens[seqID] = matched
	// The claimed chain is already committed content: later CommitPrefix
	// calls resume past it instead of re-walking from the root.
	m.prefix.committed[seqID] = commitMark{node: nodes[len(nodes)-1], full: len(nodes)}
	m.prefix.hits++
	m.prefix.tokensSaved += int64(matched)
	return matched, nil
}

// CommitPrefix registers the sequence's fully prefilled full prompt
// blocks in the trie so later requests can reuse them. Blocks whose
// content is already registered under another physical block keep the
// sequence's private copy unregistered (first writer wins); the walk
// continues through the existing chain so deeper blocks still
// register. Safe — and cheap — to call after every prefill chunk: the
// walk resumes from the sequence's last committed depth, so only new
// full blocks are hashed (re-walking from the root would make a
// small-chunk prefill quadratic in prompt blocks).
func (m *Manager) CommitPrefix(seqID int, prompt []int, prefilled int) error {
	if m.prefix == nil {
		return nil
	}
	table, ok := m.tables[seqID]
	if !ok {
		return fmt.Errorf("kvcache: unknown sequence %d", seqID)
	}
	b := m.cfg.BlockTokens
	if prefilled > len(prompt) {
		prefilled = len(prompt)
	}
	full := prefilled / b
	if full > len(table) {
		full = len(table)
	}
	node, i := m.prefix.root, 0
	if mark, ok := m.prefix.committed[seqID]; ok && mark.full <= full &&
		m.prefix.byBlock[mark.node.block] == mark.node {
		// Resume past the committed depth; a mark whose node was
		// evicted (unregistered) is stale and falls back to the root.
		node, i = mark.node, mark.full
	}
	for ; i < full; i++ {
		key := contentKey(prompt[i*b : (i+1)*b])
		child := node.children[key]
		if child == nil {
			if existing := m.prefix.byBlock[table[i]]; existing != nil {
				// The block is already advertised under different
				// content (stale chain after an eviction reshaped the
				// trie). Leave it; do not double-register.
				break
			}
			child = &prefixNode{
				parent:   node,
				children: make(map[string]*prefixNode),
				key:      key,
				block:    table[i],
			}
			node.children[key] = child
			m.prefix.byBlock[table[i]] = child
		}
		m.prefix.tick++
		child.lastUse = m.prefix.tick
		node = child
	}
	if i > 0 {
		m.prefix.committed[seqID] = commitMark{node: node, full: i}
	}
	return nil
}

// releaseBlock drops one table reference to a block: shared blocks
// stay alive, and a block reaching refcount zero is parked in the
// cached pool when the trie still advertises it, or freed outright.
func (m *Manager) releaseBlock(b int) {
	m.refcnt[b]--
	if m.refcnt[b] == 1 {
		m.prefix.shared--
	}
	if m.refcnt[b] > 0 {
		return
	}
	if node := m.prefix.byBlock[b]; node != nil {
		m.prefix.tick++
		node.lastUse = m.prefix.tick
		m.prefix.cached[b] = node
		m.enforceCap()
		return
	}
	m.freeList = append(m.freeList, b)
}

// enforceCap evicts LRU cached blocks until the configured capacity
// bound holds.
func (m *Manager) enforceCap() {
	if m.prefix.cap <= 0 {
		return
	}
	for len(m.prefix.cached) > m.prefix.cap {
		if !m.evictOne() {
			return // unreachable: cached is non-empty
		}
	}
}

// evictOne reclaims one cached block into the free list, choosing the
// least recently used trie leaf so interior prefix chains survive; if
// every cached node has children, the LRU interior node goes and its
// subtree is unregistered (cached descendants are freed too, owned
// descendants merely lose their trie advertisement). Returns false
// when nothing is cached.
func (m *Manager) evictOne() bool {
	var victim *prefixNode
	leaf := false
	for _, n := range m.prefix.cached {
		nLeaf := len(n.children) == 0
		switch {
		case victim == nil,
			nLeaf && !leaf,
			nLeaf == leaf && n.lastUse < victim.lastUse:
			victim, leaf = n, nLeaf
		}
	}
	if victim == nil {
		return false
	}
	m.unregister(victim)
	return true
}

// unregister detaches a node's whole subtree from the trie, returning
// every cached block in it to the free list.
func (m *Manager) unregister(n *prefixNode) {
	delete(n.parent.children, n.key)
	var dfs func(*prefixNode)
	dfs = func(x *prefixNode) {
		delete(m.prefix.byBlock, x.block)
		if _, parked := m.prefix.cached[x.block]; parked {
			delete(m.prefix.cached, x.block)
			m.freeList = append(m.freeList, x.block)
			m.prefix.evictions++
		}
		for _, c := range x.children {
			dfs(c)
		}
	}
	dfs(n)
}

// cowNeeded reports whether growing the sequence writes into a block
// it must not mutate: the last block is partially filled (the write
// target) and either shared with another sequence or still advertised
// by the trie as cached prefix content.
func (m *Manager) cowNeeded(seqID int) bool {
	if m.prefix == nil {
		return false
	}
	if m.seqTokens[seqID]%m.cfg.BlockTokens == 0 {
		return false // last block full; growth writes fresh blocks only
	}
	table := m.tables[seqID]
	last := table[len(table)-1]
	return m.refcnt[last] > 1 || m.prefix.byBlock[last] != nil
}

// copyOnWrite replaces the sequence's shared last block with a private
// copy (the caller has verified capacity). The shared original keeps
// its other references, or parks in the cached pool when this was the
// only one.
func (m *Manager) copyOnWrite(seqID int) {
	table := m.tables[seqID]
	old := table[len(table)-1]
	fresh := m.pop()
	m.refcnt[fresh] = 1
	table[len(table)-1] = fresh
	m.releaseBlock(old)
	m.prefix.cowCopies++
}
