package kvcache

import "testing"

// commitPrompt prefills a prompt the long way and advertises its full
// blocks in the trie.
func commitPrompt(t *testing.T, m *Manager, seqID int, prompt []int) {
	t.Helper()
	if err := m.Allocate(seqID, len(prompt)); err != nil {
		t.Fatal(err)
	}
	if err := m.CommitPrefix(seqID, prompt, len(prompt)); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixSummaryMatchMirrorsLookup(t *testing.T) {
	m := newPrefixManager(t, 64, 0)
	prompt := toks(80, 1) // five full blocks
	commitPrompt(t, m, 1, prompt)

	s := m.PrefixSummary()
	if s == nil {
		t.Fatal("PrefixSummary = nil with prefix cache enabled")
	}
	if s.Blocks != 5 || s.BlockTokens != 16 || len(s.Roots) != 1 {
		t.Fatalf("summary = %d blocks / %d tokens-per-block / %d roots, want 5/16/1",
			s.Blocks, s.BlockTokens, len(s.Roots))
	}

	// The summary's estimate agrees with the trie's exact walk on
	// shared-prefix prompts of every depth, including the fully cached
	// len−1 cap, and rejects an unrelated prompt at the root gate.
	for _, probe := range [][]int{prompt, prompt[:40], prompt[:32], prompt[:16], toks(80, 99)} {
		want := m.Lookup(probe)
		got := s.MatchTokens(HashPromptTokens(probe, s.BlockTokens))
		if got != want {
			t.Errorf("MatchTokens(%d tokens) = %d, want Lookup's %d", len(probe), got, want)
		}
	}
	// Shared first blocks with a divergent tail: the bloom stops the
	// match at the divergence (no full-prompt overestimate).
	mixed := append(append([]int(nil), prompt[:32]...), toks(48, 7)...)
	if got, want := s.MatchTokens(HashPromptTokens(mixed, s.BlockTokens)), m.Lookup(mixed); got != want {
		t.Errorf("MatchTokens(divergent tail) = %d, want %d", got, want)
	}
	// A sub-block prompt has no full block to match.
	if got := s.MatchTokens(HashPromptTokens(prompt[:10], s.BlockTokens)); got != 0 {
		t.Errorf("MatchTokens(10 tokens) = %d, want 0", got)
	}
}

func TestPrefixSummaryMemoizedPerGeneration(t *testing.T) {
	m := newPrefixManager(t, 64, 0)
	commitPrompt(t, m, 1, toks(48, 1))

	s1 := m.PrefixSummary()
	if s2 := m.PrefixSummary(); s2 != s1 {
		t.Fatal("unchanged trie rebuilt the summary")
	}
	// A trie mutation (new advertised content) invalidates the digest
	// and bumps its epoch.
	commitPrompt(t, m, 2, toks(48, 2))
	s3 := m.PrefixSummary()
	if s3 == s1 {
		t.Fatal("trie mutation did not rebuild the summary")
	}
	if s3.Epoch <= s1.Epoch {
		t.Fatalf("epoch %d did not advance past %d", s3.Epoch, s1.Epoch)
	}
	if len(s3.Roots) != 2 || s3.Blocks != 6 {
		t.Fatalf("summary after second tenant = %d roots / %d blocks, want 2/6", len(s3.Roots), s3.Blocks)
	}
}

func TestPrefixSummaryDisabledAndEmpty(t *testing.T) {
	m, err := NewManager(Config{BlockTokens: 16, TotalBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if s := m.PrefixSummary(); s != nil {
		t.Fatalf("PrefixSummary without prefix cache = %+v, want nil", s)
	}

	m2 := newPrefixManager(t, 8, 0)
	s := m2.PrefixSummary()
	if s == nil {
		t.Fatal("empty trie summary = nil, want empty digest")
	}
	if s.Blocks != 0 || len(s.Roots) != 0 || s.Bloom != nil {
		t.Fatalf("empty trie summary = %+v, want zero blocks, no roots, no bloom", s)
	}
	if got := s.MatchTokens(HashPromptTokens(toks(32, 1), 16)); got != 0 {
		t.Fatalf("MatchTokens on empty summary = %d, want 0", got)
	}
	var nilSummary *PrefixSummary
	if got := nilSummary.MatchTokens(HashPromptTokens(toks(32, 1), 16)); got != 0 {
		t.Fatalf("MatchTokens on nil summary = %d, want 0", got)
	}
}

func TestPrefixSummaryBloomFalsePositiveRate(t *testing.T) {
	m := newPrefixManager(t, 2048, 0)
	// Advertise 32 tenants × 4 blocks = 128 trie nodes.
	for tenant := 0; tenant < 32; tenant++ {
		commitPrompt(t, m, tenant+1, toks(64, tenant+1))
	}
	s := m.PrefixSummary()
	if s.Blocks != 128 {
		t.Fatalf("Blocks = %d, want 128", s.Blocks)
	}
	if bits := len(s.Bloom) * 64; bits < s.Blocks*summaryBloomBitsPerEntry {
		t.Fatalf("bloom %d bits undersized for %d entries", bits, s.Blocks)
	}
	// Probe with fingerprints of unadvertised paths; at ~10 bits/entry
	// and k=4 the analytical FP rate is ~1.2%, so 2000 probes should
	// see far fewer than 5% positives even with unlucky seeds.
	fp := 0
	const probes = 2000
	for i := 0; i < probes; i++ {
		h := fnvString(fnvOffset64, contentKey(toks(16, 100000+i)))
		if bloomTest(s.Bloom, s.BloomK, h) {
			fp++
		}
	}
	if fp > probes*5/100 {
		t.Fatalf("bloom false-positive rate %d/%d exceeds 5%%", fp, probes)
	}
}

func TestMergePrefixSummaries(t *testing.T) {
	m1 := newPrefixManager(t, 64, 0)
	commitPrompt(t, m1, 1, toks(48, 1))
	m2 := newPrefixManager(t, 64, 0)
	commitPrompt(t, m2, 1, toks(48, 2))
	s1, s2 := m1.PrefixSummary(), m2.PrefixSummary()

	merged := MergePrefixSummaries([]*PrefixSummary{s1, nil, s2})
	if merged == nil {
		t.Fatal("merged = nil")
	}
	if merged.Blocks != 6 || len(merged.Roots) != 2 {
		t.Fatalf("merged = %d blocks / %d roots, want 6/2", merged.Blocks, len(merged.Roots))
	}
	if merged.Epoch < s1.Epoch || merged.Epoch < s2.Epoch {
		t.Fatalf("merged epoch %d older than inputs (%d, %d)", merged.Epoch, s1.Epoch, s2.Epoch)
	}
	// Equal-sized blooms OR together: both tenants' prompts match the
	// fleet digest (fully cached, so capped at len−1).
	for seed := 1; seed <= 2; seed++ {
		probe := toks(48, seed)
		if got := merged.MatchTokens(HashPromptTokens(probe, merged.BlockTokens)); got != 47 {
			t.Errorf("merged MatchTokens(tenant %d) = %d, want 47", seed, got)
		}
	}
	// Duplicate roots dedup.
	again := MergePrefixSummaries([]*PrefixSummary{s1, s1})
	if len(again.Roots) != 1 || again.Blocks != 6 {
		t.Fatalf("self-merge = %d roots / %d blocks, want 1 root / 6 blocks", len(again.Roots), again.Blocks)
	}

	// Mismatched granularity keeps the block count but drops the
	// fingerprint structures — they never compare across block sizes.
	m3, err := NewManager(Config{BlockTokens: 32, TotalBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := m3.EnablePrefixCache(0); err != nil {
		t.Fatal(err)
	}
	commitPrompt(t, m3, 1, toks(64, 3))
	mixed := MergePrefixSummaries([]*PrefixSummary{s1, m3.PrefixSummary()})
	if mixed.BlockTokens != 0 || mixed.Roots != nil || mixed.Bloom != nil {
		t.Fatalf("mixed-granularity merge kept fingerprints: %+v", mixed)
	}
	if mixed.Blocks != 5 {
		t.Fatalf("mixed-granularity merge Blocks = %d, want 5", mixed.Blocks)
	}

	if MergePrefixSummaries(nil) != nil || MergePrefixSummaries([]*PrefixSummary{nil, nil}) != nil {
		t.Fatal("all-nil merge should be nil")
	}
}
