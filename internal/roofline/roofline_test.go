package roofline

import (
	"math"
	"testing"

	"zipserv/internal/gpu"
)

const paperCR = 1.51 // §3.1 average compression ratio

func TestFig5CIDegradation(t *testing.T) {
	// §3.3: for M=K=4096 the decoupled pipeline degrades CI by 62.3%,
	// 62.2%, 62.0% and 61.7% at N = 8, 16, 32, 64.
	wants := map[int]float64{8: 0.623, 16: 0.622, 32: 0.620, 64: 0.617}
	for n, want := range wants {
		gemm := CIGemm(4096, 4096, n)
		dec := CIDecoupled(4096, 4096, n, paperCR)
		got := 1 - dec/gemm
		if math.Abs(got-want) > 0.005 {
			t.Errorf("N=%d: CI degradation %.4f, paper %.3f", n, got, want)
		}
	}
}

func TestFig5ZipServCIGain(t *testing.T) {
	// §3.3: ZipServ's fused CI is ≈50% higher than the uncompressed
	// GEMM in the memory-bound regime.
	for _, n := range []int{8, 16, 32, 64} {
		gain := CIZipServ(4096, 4096, n, paperCR)/CIGemm(4096, 4096, n) - 1
		if gain < 0.40 || gain > 0.55 {
			t.Errorf("N=%d: ZipServ CI gain %.3f outside [0.40, 0.55] (paper ≈0.50)", n, gain)
		}
	}
}

func TestCIOrdering(t *testing.T) {
	// Decoupled < GEMM < ZipServ for every decode-regime shape.
	for _, n := range []int{1, 8, 32, 128} {
		d := CIDecoupled(8192, 8192, n, paperCR)
		g := CIGemm(8192, 8192, n)
		z := CIZipServ(8192, 8192, n, paperCR)
		if !(d < g && g < z) {
			t.Errorf("N=%d: ordering violated (dec %.2f, gemm %.2f, zip %.2f)", n, d, g, z)
		}
	}
}

func TestCIConvergesAtLargeN(t *testing.T) {
	// As N → ∞ activations dominate traffic and all three pipelines'
	// CI converge (this is why prefill uses the decoupled path: the
	// weight-traffic advantage vanishes).
	n := 1 << 20
	g := CIGemm(4096, 4096, n)
	z := CIZipServ(4096, 4096, n, paperCR)
	d := CIDecoupled(4096, 4096, n, paperCR)
	if z/g > 1.01 || g/d > 1.01 {
		t.Errorf("large-N CIs did not converge: gemm %.1f, zip %.1f, dec %.1f", g, z, d)
	}
}

func TestAttainableAndRidge(t *testing.T) {
	spec := gpu.MustByName("RTX4090")
	ridge := Ridge(spec)
	// Below the ridge: memory bound, linear in CI.
	lo := Attainable(spec, ridge/2)
	if math.Abs(lo-ridge/2*spec.MemBWGBps*1e9) > 1 {
		t.Errorf("below-ridge attainable %.3e, want linear in CI", lo)
	}
	// Above the ridge: flat at peak.
	hi := Attainable(spec, ridge*10)
	if hi != spec.BF16TFLOPS*1e12 {
		t.Errorf("above-ridge attainable %.3e, want peak %.3e", hi, spec.BF16TFLOPS*1e12)
	}
	// Decode shapes sit far below the ridge on every evaluation GPU
	// (the premise of the whole paper).
	for _, s := range gpu.EvaluationGPUs() {
		if ci := CIGemm(4096, 4096, 32); ci > Ridge(s) {
			t.Errorf("%s: decode GEMM CI %.1f above ridge %.1f", s.Name, ci, Ridge(s))
		}
	}
}

func TestFigure5Sweep(t *testing.T) {
	spec := gpu.MustByName("RTX4090")
	pts := Figure5(spec, 4096, []int{8, 16, 32, 64}, paperCR)
	if len(pts) != 12 {
		t.Fatalf("Figure5 returned %d points, want 12", len(pts))
	}
	for _, p := range pts {
		if p.CI <= 0 || p.Attainable <= 0 {
			t.Errorf("degenerate point %+v", p)
		}
		// All Figure-5 decode points are memory-bound: attainable
		// scales linearly with CI.
		want := p.CI * spec.MemBWGBps * 1e9
		if p.Attainable != want && p.Attainable != spec.BF16TFLOPS*1e12 {
			t.Errorf("point %+v: attainable does not follow the roofline", p)
		}
	}
}
