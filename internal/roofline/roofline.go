// Package roofline implements the compute-intensity analysis of §3.3:
// Equations 1–3 for the standard, decoupled and fused (ZipServ)
// pipelines, and the roofline attainable-performance model of
// Figure 5. Compute intensity (CI) is measured in FLOPs per byte of
// global-memory traffic; in the memory-bound regime attainable
// throughput is CI × bandwidth, so the decoupled pipeline's extra
// traffic translates directly into the slowdowns of Figure 11.
package roofline

import "zipserv/internal/gpu"

// CIGemm returns the compute intensity of a standard BF16 GEMM
// (Equation 1): 2MNK FLOPs over 2(MK + KN + MN) bytes.
func CIGemm(m, k, n int) float64 {
	flops := 2 * float64(m) * float64(n) * float64(k)
	bytes := 2 * (float64(m)*float64(k) + float64(k)*float64(n) + float64(m)*float64(n))
	return flops / bytes
}

// CIDecoupled returns the compute intensity of the decoupled
// decompress-then-GEMM pipeline (Equation 2): the weight matrix is
// read compressed (2MK/CR), written decompressed (2MK) and read again
// by the GEMM (2MK).
func CIDecoupled(m, k, n int, cr float64) float64 {
	flops := 2 * float64(m) * float64(n) * float64(k)
	bytes := float64(m)*float64(k)*(2/cr+4) + 2*(float64(k)*float64(n)+float64(m)*float64(n))
	return flops / bytes
}

// CIZipServ returns the compute intensity of the fused ZipGEMM
// pipeline (Equation 3): weights cross DRAM exactly once, compressed.
func CIZipServ(m, k, n int, cr float64) float64 {
	flops := 2 * float64(m) * float64(n) * float64(k)
	bytes := 2*float64(m)*float64(k)/cr + 2*(float64(k)*float64(n)+float64(m)*float64(n))
	return flops / bytes
}

// Attainable returns the roofline-attainable throughput in FLOP/s for
// a kernel of compute intensity ci on the device: min(peak compute,
// ci × bandwidth).
func Attainable(spec gpu.Spec, ci float64) float64 {
	peak := spec.BF16TFLOPS * 1e12
	memBound := ci * spec.MemBWGBps * 1e9
	if memBound < peak {
		return memBound
	}
	return peak
}

// Ridge returns the device's ridge point — the compute intensity at
// which it transitions from memory- to compute-bound.
func Ridge(spec gpu.Spec) float64 {
	return spec.BF16TFLOPS * 1e12 / (spec.MemBWGBps * 1e9)
}

// Point is one roofline sample for Figure 5.
type Point struct {
	Pipeline   string
	N          int
	CI         float64
	Attainable float64 // FLOP/s on the target device
}

// Figure5 computes the Figure 5 sweep: CI and attainable throughput of
// the three pipelines for a square M=K weight at the given batch
// sizes.
func Figure5(spec gpu.Spec, mk int, ns []int, cr float64) []Point {
	var out []Point
	for _, n := range ns {
		for _, p := range []struct {
			name string
			ci   float64
		}{
			{"GEMM", CIGemm(mk, mk, n)},
			{"Decoupled", CIDecoupled(mk, mk, n, cr)},
			{"ZipServ", CIZipServ(mk, mk, n, cr)},
		} {
			out = append(out, Point{Pipeline: p.name, N: n, CI: p.ci, Attainable: Attainable(spec, p.ci)})
		}
	}
	return out
}
