package bf16

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFieldExtraction(t *testing.T) {
	cases := []struct {
		name     string
		bits     uint16
		sign     uint16
		exponent uint8
		mantissa uint8
	}{
		{"one", 0x3F80, 0, 127, 0},
		{"negOne", 0xBF80, 1, 127, 0},
		{"two", 0x4000, 0, 128, 0},
		{"half", 0x3F00, 0, 126, 0},
		{"posZero", 0x0000, 0, 0, 0},
		{"negZero", 0x8000, 1, 0, 0},
		{"inf", 0x7F80, 0, 255, 0},
		{"negInf", 0xFF80, 1, 255, 0},
		{"nan", 0x7FC0, 0, 255, 0x40},
		{"maxMantissa", 0x3FFF, 0, 127, 0x7F},
		{"subnormal", 0x0001, 0, 0, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			x := FromBits(c.bits)
			if got := x.Sign(); got != c.sign {
				t.Errorf("Sign() = %d, want %d", got, c.sign)
			}
			if got := x.Exponent(); got != c.exponent {
				t.Errorf("Exponent() = %d, want %d", got, c.exponent)
			}
			if got := x.Mantissa(); got != c.mantissa {
				t.Errorf("Mantissa() = %d, want %d", got, c.mantissa)
			}
		})
	}
}

func TestAssembleRoundTripAllBitPatterns(t *testing.T) {
	// Exhaustive: every one of the 65536 bit patterns must survive
	// field extraction + reassembly. This is the foundation of the
	// codec's bit-exactness guarantee.
	for u := 0; u <= math.MaxUint16; u++ {
		x := FromBits(uint16(u))
		y := Assemble(x.Sign(), x.Exponent(), x.Mantissa())
		if x != y {
			t.Fatalf("bit pattern %#04x: assemble(fields) = %#04x", u, y.Bits())
		}
	}
}

func TestPackSignMantissaRoundTrip(t *testing.T) {
	for u := 0; u <= math.MaxUint16; u++ {
		x := FromBits(uint16(u))
		p := x.PackSignMantissa()
		sign, mant := UnpackSignMantissa(p)
		if sign != x.Sign() || mant != x.Mantissa() {
			t.Fatalf("pattern %#04x: pack/unpack gave sign=%d mant=%#x, want sign=%d mant=%#x",
				u, sign, mant, x.Sign(), x.Mantissa())
		}
	}
}

func TestFloat32WideningExact(t *testing.T) {
	// Widening BF16 → FP32 → BF16 must be the identity for every
	// pattern, including NaNs (payload preserved by bit shifting),
	// infinities, and subnormals.
	for u := 0; u <= math.MaxUint16; u++ {
		x := FromBits(uint16(u))
		f := x.Float32()
		back := math.Float32bits(f)
		if back>>16 != uint32(u) || back&0xFFFF != 0 {
			t.Fatalf("pattern %#04x: Float32 bits = %#08x, want %#04x0000", u, back, u)
		}
	}
}

func TestFromFloat32Exact(t *testing.T) {
	// Values exactly representable in BF16 must convert without change.
	cases := []float32{0, 1, -1, 0.5, 2, -3, 0.25, 1.5, 65280, -65280, 1.0 / 256}
	for _, f := range cases {
		x := FromFloat32(f)
		if got := x.Float32(); got != f {
			t.Errorf("FromFloat32(%g).Float32() = %g", f, got)
		}
	}
}

func TestFromFloat32RoundToNearestEven(t *testing.T) {
	cases := []struct {
		name string
		in   uint32 // FP32 bits
		want uint16 // BF16 bits
	}{
		// 1.0 + half ULP of BF16 (0x3F808000) ties to even → 1.0.
		{"tieToEvenDown", 0x3F808000, 0x3F80},
		// 1.0078125 + half ULP (0x3F818000) ties to even → round up to 0x3F82.
		{"tieToEvenUp", 0x3F818000, 0x3F82},
		// Just above half ULP rounds up.
		{"aboveHalfUp", 0x3F808001, 0x3F81},
		// Just below half ULP rounds down.
		{"belowHalfDown", 0x3F807FFF, 0x3F80},
		// Rounding can carry into the exponent: 1.9999999 → 2.0.
		{"carryIntoExponent", 0x3FFFFFFF, 0x4000},
		// Large finite FP32 near BF16 max rounds to +Inf.
		{"overflowToInf", 0x7F7FFFFF, 0x7F80},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := FromFloat32(math.Float32frombits(c.in))
			if got.Bits() != c.want {
				t.Errorf("FromFloat32(%#08x) = %#04x, want %#04x", c.in, got.Bits(), c.want)
			}
		})
	}
}

func TestFromFloat32NaN(t *testing.T) {
	n := FromFloat32(float32(math.NaN()))
	if !n.IsNaN() {
		t.Fatalf("FromFloat32(NaN) = %#04x, not a NaN", n.Bits())
	}
	// Signalling NaN with payload only in the low bits must remain a
	// NaN after truncation (quieting), not become Inf.
	s := math.Float32frombits(0x7F800001)
	q := FromFloat32(s)
	if !q.IsNaN() {
		t.Fatalf("FromFloat32(sNaN) = %#04x, not a NaN", q.Bits())
	}
	neg := FromFloat32(math.Float32frombits(0xFF800001))
	if !neg.IsNaN() || neg.Sign() != 1 {
		t.Fatalf("FromFloat32(-sNaN) = %#04x, want negative NaN", neg.Bits())
	}
}

func TestClassifiers(t *testing.T) {
	cases := []struct {
		bits                    uint16
		nan, inf, zero, subnorm bool
	}{
		{0x0000, false, false, true, false},
		{0x8000, false, false, true, false},
		{0x7F80, false, true, false, false},
		{0xFF80, false, true, false, false},
		{0x7FC0, true, false, false, false},
		{0x7F81, true, false, false, false},
		{0x0001, false, false, false, true},
		{0x807F, false, false, false, true},
		{0x3F80, false, false, false, false},
	}
	for _, c := range cases {
		x := FromBits(c.bits)
		if x.IsNaN() != c.nan || x.IsInf() != c.inf || x.IsZero() != c.zero || x.IsSubnormal() != c.subnorm {
			t.Errorf("pattern %#04x: classifiers (%v,%v,%v,%v), want (%v,%v,%v,%v)",
				c.bits, x.IsNaN(), x.IsInf(), x.IsZero(), x.IsSubnormal(),
				c.nan, c.inf, c.zero, c.subnorm)
		}
	}
}

func TestNegAbs(t *testing.T) {
	if FromBits(0x3F80).Neg() != FromBits(0xBF80) {
		t.Error("Neg(1) != -1")
	}
	if FromBits(0xBF80).Abs() != FromBits(0x3F80) {
		t.Error("Abs(-1) != 1")
	}
	if FromBits(0x8000).Abs() != FromBits(0x0000) {
		t.Error("Abs(-0) != +0")
	}
}

func TestQuickRoundTripFloat32(t *testing.T) {
	// Property: converting an arbitrary float32 to BF16 and widening
	// back yields a value within one BF16 ULP of the input (or both
	// NaN). quick generates arbitrary float32s including extremes.
	f := func(in float32) bool {
		x := FromFloat32(in)
		out := x.Float32()
		if math.IsNaN(float64(in)) {
			return x.IsNaN()
		}
		if math.IsInf(float64(in), 0) {
			return x.IsInf() && (out < 0) == (in < 0)
		}
		// |in - out| must be at most half a ULP of the BF16 grid at
		// |in|'s magnitude: 2^(exp-127-7) rounded up.
		diff := math.Abs(float64(in) - float64(out))
		ulp := math.Ldexp(1, int(x.Exponent())-ExponentBias-MantissaBits)
		if x.Exponent() == 0 { // subnormal grid
			ulp = math.Ldexp(1, 1-ExponentBias-MantissaBits)
		}
		if x.IsInf() { // rounded up to infinity near the top of range
			return math.Abs(float64(in)) > 3.3e38
		}
		return diff <= ulp/2+1e-45
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestQuickAssembleInverse(t *testing.T) {
	// Property: Assemble is a left inverse of field extraction for
	// arbitrary 16-bit patterns.
	f := func(u uint16) bool {
		x := FromBits(u)
		return Assemble(x.Sign(), x.Exponent(), x.Mantissa()) == x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
