package bf16

import "fmt"

// Matrix is a dense, row-major BF16 matrix. Weight matrices in the
// paper are W ∈ R^{M×K} where M is the output dimension and K the
// hidden (reduction) dimension; Data[r*Cols+c] holds element (r, c).
type Matrix struct {
	Rows, Cols int
	Data       []BF16
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("bf16: negative matrix dimensions %d×%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]BF16, rows*cols)}
}

// At returns the element at row r, column c.
func (m *Matrix) At(r, c int) BF16 { return m.Data[r*m.Cols+c] }

// Set stores v at row r, column c.
func (m *Matrix) Set(r, c int, v BF16) { m.Data[r*m.Cols+c] = v }

// NumElements returns Rows×Cols.
func (m *Matrix) NumElements() int { return m.Rows * m.Cols }

// SizeBytes returns the uncompressed storage footprint (2 bytes per
// element), the denominator of every compression ratio in the paper.
func (m *Matrix) SizeBytes() int { return 2 * m.NumElements() }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := &Matrix{Rows: m.Rows, Cols: m.Cols, Data: make([]BF16, len(m.Data))}
	copy(out.Data, m.Data)
	return out
}

// Equal reports whether m and other have identical shape and identical
// bit patterns in every element. This is the bit-exactness predicate
// used throughout the test suite: two NaNs with different payloads are
// NOT equal, and +0 != -0.
func (m *Matrix) Equal(other *Matrix) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		if v != other.Data[i] {
			return false
		}
	}
	return true
}

// FirstDiff returns the flat index of the first element where m and
// other differ, or -1 if they are bit-identical. Shape mismatches
// return 0. Useful in test failure messages.
func (m *Matrix) FirstDiff(other *Matrix) int {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return 0
	}
	for i, v := range m.Data {
		if v != other.Data[i] {
			return i
		}
	}
	return -1
}

// ToFloat32 widens the matrix into a freshly allocated []float32 in
// row-major order.
func (m *Matrix) ToFloat32() []float32 {
	out := make([]float32, len(m.Data))
	for i, v := range m.Data {
		out[i] = v.Float32()
	}
	return out
}

// FromFloat32Matrix builds a BF16 matrix by rounding each float32
// (round-to-nearest-even).
func FromFloat32Matrix(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("bf16: data length %d does not match %d×%d", len(data), rows, cols))
	}
	m := NewMatrix(rows, cols)
	for i, f := range data {
		m.Data[i] = FromFloat32(f)
	}
	return m
}
