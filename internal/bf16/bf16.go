// Package bf16 implements the Brain Floating Point 16 (BF16) scalar
// format and dense BF16 matrices, the numeric substrate of ZipServ.
//
// A BF16 value is the top 16 bits of an IEEE-754 binary32: 1 sign bit,
// 8 exponent bits and 7 mantissa bits. It preserves the full FP32
// exponent range while truncating precision, which is why the exponent
// field of LLM weights carries so little information (§2.2, §3.1 of the
// paper) — the property the TCA-TBE codec exploits.
//
// All conversions here are bit-exact and total: NaNs, infinities,
// subnormals and signed zeros round-trip unchanged through
// FromBits/Bits, and FromFloat32 uses round-to-nearest-even, matching
// the hardware convert instructions on NVIDIA Tensor Cores, Google
// TPUs and Intel AMX.
package bf16

import (
	"math"
)

// Field layout constants for the 1-8-7 BF16 format.
const (
	SignBits     = 1
	ExponentBits = 8
	MantissaBits = 7

	// ExponentBias is the IEEE excess-127 bias shared with FP32.
	ExponentBias = 127

	// ExponentMax is the largest raw exponent field value (all ones,
	// reserved for Inf/NaN).
	ExponentMax = (1 << ExponentBits) - 1

	signMask     = 0x8000
	exponentMask = 0x7F80
	mantissaMask = 0x007F
)

// BF16 is a single bfloat16 value stored in its raw bit representation.
// The zero value is positive zero.
type BF16 uint16

// FromBits reinterprets a raw 16-bit pattern as a BF16 value.
func FromBits(b uint16) BF16 { return BF16(b) }

// Bits returns the raw 16-bit pattern of x.
func (x BF16) Bits() uint16 { return uint16(x) }

// FromFloat32 converts f to BF16 with round-to-nearest-even, the
// rounding mode used by hardware BF16 converts. NaN inputs are
// canonicalised to a quiet NaN that preserves the sign bit.
func FromFloat32(f float32) BF16 {
	u := math.Float32bits(f)
	if isNaN32(u) {
		// Quiet NaN with the top mantissa bit set so the payload
		// survives truncation to 16 bits.
		return BF16(uint16(u>>16) | 0x0040)
	}
	// Round to nearest even: add half an ULP of the destination,
	// plus one more when the bit that will become the LSB is set.
	u += 0x7FFF + ((u >> 16) & 1)
	return BF16(u >> 16)
}

// Float32 widens x to float32 exactly (BF16 ⊂ FP32, so this is lossless).
func (x BF16) Float32() float32 {
	return math.Float32frombits(uint32(x) << 16)
}

// Float64 widens x to float64 exactly.
func (x BF16) Float64() float64 { return float64(x.Float32()) }

// Sign reports the raw sign bit (0 for positive, 1 for negative).
func (x BF16) Sign() uint16 { return uint16(x) >> 15 }

// Exponent reports the raw 8-bit exponent field (biased by 127).
func (x BF16) Exponent() uint8 { return uint8((uint16(x) & exponentMask) >> MantissaBits) }

// Mantissa reports the raw 7-bit mantissa field.
func (x BF16) Mantissa() uint8 { return uint8(uint16(x) & mantissaMask) }

// Assemble builds a BF16 from raw sign, exponent and mantissa fields.
// Only the low bit of sign, all 8 bits of exponent, and the low 7 bits
// of mantissa are used. This is the "MakeBF16" step of the paper's
// Algorithm 2 (fast exponent reassembly).
func Assemble(sign uint16, exponent uint8, mantissa uint8) BF16 {
	return BF16((sign&1)<<15 | uint16(exponent)<<MantissaBits | uint16(mantissa)&mantissaMask)
}

// PackSignMantissa packs the sign and mantissa of x into a single byte
// (sign in bit 7, mantissa in bits 0–6). This is the 8-bit
// PackedSignMantissa representation used for in-window elements in
// TCA-TBE (§4.2).
func (x BF16) PackSignMantissa() uint8 {
	return uint8(x.Sign()<<7) | x.Mantissa()
}

// UnpackSignMantissa splits a PackedSignMantissa byte back into its
// sign and mantissa fields.
func UnpackSignMantissa(p uint8) (sign uint16, mantissa uint8) {
	return uint16(p >> 7), p & 0x7F
}

// IsNaN reports whether x is a NaN (max exponent, nonzero mantissa).
func (x BF16) IsNaN() bool {
	return x.Exponent() == ExponentMax && x.Mantissa() != 0
}

// IsInf reports whether x is ±Inf (max exponent, zero mantissa).
func (x BF16) IsInf() bool {
	return x.Exponent() == ExponentMax && x.Mantissa() == 0
}

// IsZero reports whether x is ±0.
func (x BF16) IsZero() bool { return uint16(x)&^uint16(signMask) == 0 }

// IsSubnormal reports whether x is a nonzero subnormal (zero exponent,
// nonzero mantissa).
func (x BF16) IsSubnormal() bool {
	return x.Exponent() == 0 && x.Mantissa() != 0
}

// Neg returns x with the sign bit flipped (bit-level negation; also
// flips the sign of zeros and NaNs, like hardware FNEG).
func (x BF16) Neg() BF16 { return x ^ signMask }

// Abs returns x with the sign bit cleared.
func (x BF16) Abs() BF16 { return x &^ signMask }

func isNaN32(u uint32) bool {
	return u&0x7F800000 == 0x7F800000 && u&0x007FFFFF != 0
}
