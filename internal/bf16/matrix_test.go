package bf16

import (
	"math/rand"
	"testing"
)

func TestMatrixAccessors(t *testing.T) {
	m := NewMatrix(3, 5)
	if m.NumElements() != 15 || m.SizeBytes() != 30 {
		t.Fatalf("NumElements=%d SizeBytes=%d, want 15/30", m.NumElements(), m.SizeBytes())
	}
	m.Set(2, 4, FromFloat32(1.5))
	if got := m.At(2, 4).Float32(); got != 1.5 {
		t.Errorf("At(2,4) = %g, want 1.5", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Errorf("At(0,0) = %#04x, want zero", got.Bits())
	}
}

func TestMatrixCloneIndependence(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, FromFloat32(3))
	c := m.Clone()
	c.Set(0, 0, FromFloat32(7))
	if m.At(0, 0).Float32() != 3 {
		t.Error("Clone shares backing storage with original")
	}
	if !m.Equal(m.Clone()) {
		t.Error("Clone is not Equal to original")
	}
}

func TestMatrixEqualBitExact(t *testing.T) {
	a := NewMatrix(1, 2)
	b := NewMatrix(1, 2)
	if !a.Equal(b) {
		t.Error("zero matrices must be equal")
	}
	// +0 vs -0 differ bitwise.
	b.Set(0, 0, FromBits(0x8000))
	if a.Equal(b) {
		t.Error("+0 and -0 must not compare equal bit-exactly")
	}
	// NaNs with different payloads differ.
	a.Set(0, 0, FromBits(0x7FC0))
	b.Set(0, 0, FromBits(0x7FC1))
	if a.Equal(b) {
		t.Error("NaNs with distinct payloads must not compare equal")
	}
	// Shape mismatch.
	if a.Equal(NewMatrix(2, 1)) {
		t.Error("shape mismatch must not compare equal")
	}
}

func TestMatrixFirstDiff(t *testing.T) {
	a := NewMatrix(2, 3)
	b := a.Clone()
	if got := a.FirstDiff(b); got != -1 {
		t.Errorf("FirstDiff of identical = %d, want -1", got)
	}
	b.Set(1, 1, FromFloat32(2))
	if got := a.FirstDiff(b); got != 4 {
		t.Errorf("FirstDiff = %d, want 4", got)
	}
}

func TestFromFloat32Matrix(t *testing.T) {
	data := []float32{1, 2, 3, 4, 5, 6}
	m := FromFloat32Matrix(2, 3, data)
	back := m.ToFloat32()
	for i := range data {
		if back[i] != data[i] {
			t.Errorf("element %d: %g != %g", i, back[i], data[i])
		}
	}
}

func TestFromFloat32MatrixPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on mismatched data length")
		}
	}()
	FromFloat32Matrix(2, 3, make([]float32, 5))
}

func TestNewMatrixPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative dimension")
		}
	}()
	NewMatrix(-1, 4)
}

func TestMatrixRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := NewMatrix(17, 33)
	for i := range m.Data {
		m.Data[i] = FromBits(uint16(rng.Intn(1 << 16)))
	}
	c := m.Clone()
	if !m.Equal(c) || m.FirstDiff(c) != -1 {
		t.Error("random matrix does not round-trip through Clone")
	}
}
