// Package core implements Tensor-Core-Aware Triple Bitmap Encoding
// (TCA-TBE), the primary contribution of the ZipServ paper (§4.2), and
// its constant-time, branch-free decoder (§4.3.2, Algorithm 2).
//
// TCA-TBE is a fixed-length, tile-structured lossless format for BF16
// weight matrices. Offline, the compressor profiles the exponent
// histogram, picks a window of 2^n−1 numerically consecutive exponents
// (n = 3 by default, so seven exponents), and records the value just
// below the window as BaseExp. Each 8×8 FragTile is then encoded as:
//
//   - n 64-bit bitmaps, one per bit-plane of the n-bit codewords
//     ("triple bitmap" for n = 3);
//   - a PackedSignMantissa buffer holding one byte (sign + 7-bit
//     mantissa) per element whose exponent falls inside the window;
//   - a FullValue buffer holding the complete 16-bit pattern of every
//     outlier (codeword 0).
//
// Decoding is thread-local and data-independent: a lane ORs the
// bit-planes into a spatial indicator mask, uses popcount over a prefix
// of that mask to compute its buffer offset (dynamic addressing), and
// reconstructs the exponent as BaseExp + code (implicit lookup) — no
// variable-length bitstream, no divergence, no tables.
package core

import (
	"fmt"

	"zipserv/internal/tile"
)

// Selection chooses how the compressor picks the set of in-window
// exponents (ablation A5 in DESIGN.md).
type Selection uint8

const (
	// WindowSelection picks the contiguous window of 2^n−1 exponents
	// that maximises coverage, enabling the implicit base+code lookup.
	// This is the paper's design, justified by the contiguity property
	// of §3.1 / Appendix A.
	WindowSelection Selection = iota

	// TopFrequencySelection picks the 2^n−1 individually most frequent
	// exponents regardless of contiguity; decoding then requires an
	// explicit codebook table lookup. Kept as the ablation baseline the
	// paper argues against.
	TopFrequencySelection
)

func (s Selection) String() string {
	switch s {
	case WindowSelection:
		return "window"
	case TopFrequencySelection:
		return "top-frequency"
	default:
		return fmt.Sprintf("Selection(%d)", uint8(s))
	}
}

// Options configures the compressor.
type Options struct {
	// CodewordBits is the fixed codeword length n; the codec covers
	// 2^n−1 exponent values. The paper chooses 3 (§4.2 "The Choice of
	// Codeword Length"); 2 and 4 are supported for the ablation study.
	CodewordBits int

	// Selection is the exponent-set selection strategy.
	Selection Selection
}

// DefaultOptions returns the paper's configuration: 3-bit codewords
// over a contiguous window of 7 exponents.
func DefaultOptions() Options {
	return Options{CodewordBits: 3, Selection: WindowSelection}
}

func (o Options) validate() error {
	if o.CodewordBits < 2 || o.CodewordBits > 4 {
		return fmt.Errorf("core: codeword length %d outside supported range [2,4]", o.CodewordBits)
	}
	if o.Selection != WindowSelection && o.Selection != TopFrequencySelection {
		return fmt.Errorf("core: unknown selection strategy %d", o.Selection)
	}
	return nil
}

// WindowSize returns the number of in-window exponent values, 2^n−1.
func (o Options) WindowSize() int { return 1<<o.CodewordBits - 1 }

// Compressed is a weight matrix in TCA-TBE form. The four global
// arrays (bit-planes, PackedSignMantissa, FullValue, offsets) mirror
// the paper's matrix-level layout (§4.2 "Hierarchical Tiling Design"):
// buffers are nested by the tiling hierarchy, and the Offset arrays
// record where each GroupTile (64×64 BlockTile) begins within the
// value buffers.
type Compressed struct {
	Grid tile.Grid
	Opts Options

	// BaseExp is min(window) − 1; an in-window element with codeword c
	// has exponent BaseExp + c. It is int16 because a window starting
	// at exponent 0 yields BaseExp = −1.
	BaseExp int16

	// Codebook maps codeword c → exponent for TopFrequencySelection;
	// Codebook[c-1] is the exponent assigned to codeword c. It is also
	// populated (redundantly, as BaseExp+c) under WindowSelection so
	// diagnostic tooling can treat both modes uniformly.
	Codebook []uint8

	// Planes holds the bit-plane bitmaps: Planes[frag*n + b] is
	// bit-plane b (LSB first) of global FragTile frag. Bit p of a
	// plane corresponds to row-major position p within the 8×8 tile.
	Planes []uint64

	// High is the PackedSignMantissa buffer: one byte per in-window
	// element, in (block, frag, position) order.
	High []uint8

	// Full is the FullValue fallback buffer: one raw BF16 pattern per
	// outlier element, same ordering.
	Full []uint16

	// HighOff and FullOff record the starting offset of each BlockTile
	// within High and Full respectively; both have NumBlocks()+1
	// entries so that block b spans [Off[b], Off[b+1]).
	HighOff []int64
	FullOff []int64
}

// NumPlanesPerFrag returns the number of bit-planes each FragTile
// stores (= CodewordBits).
func (c *Compressed) NumPlanesPerFrag() int { return c.Opts.CodewordBits }

// FragPlanes returns the bit-planes of global FragTile frag.
func (c *Compressed) FragPlanes(frag int) []uint64 {
	n := c.Opts.CodewordBits
	return c.Planes[frag*n : frag*n+n]
}

// Indicator returns the spatial indicator mask of FragTile frag: the
// bitwise OR of its planes. Bit p set ⇒ position p is in-window
// (high-frequency path); clear ⇒ fallback path. This is Step 1 of
// Algorithm 2.
func (c *Compressed) Indicator(frag int) uint64 {
	m := uint64(0)
	for _, p := range c.FragPlanes(frag) {
		m |= p
	}
	return m
}

// SizeBytes returns the total compressed footprint: bitmap planes,
// value buffers, per-block offsets and the fixed header. This is the
// numerator-side of every compression-ratio figure in the paper.
func (c *Compressed) SizeBytes() int {
	const header = 32 // magic, version, dims, options, base exponent
	return header +
		8*len(c.Planes) +
		len(c.High) +
		2*len(c.Full) +
		8*(len(c.HighOff)+len(c.FullOff)) +
		len(c.Codebook)
}

// CompressionRatio returns uncompressed bytes / compressed bytes.
func (c *Compressed) CompressionRatio() float64 {
	orig := 2 * c.Grid.Rows * c.Grid.Cols
	return float64(orig) / float64(c.SizeBytes())
}

// BitsPerElement returns the average compressed storage per original
// matrix element, comparable to the AverageBits(n) analysis of §4.2.
func (c *Compressed) BitsPerElement() float64 {
	return 8 * float64(c.SizeBytes()) / float64(c.Grid.Rows*c.Grid.Cols)
}

// HighCount returns the number of in-window (PackedSignMantissa)
// elements, including padding elements.
func (c *Compressed) HighCount() int { return len(c.High) }

// FullCount returns the number of fallback (full-precision) elements.
func (c *Compressed) FullCount() int { return len(c.Full) }

// CoverageRatio returns the fraction of stored elements that took the
// high-frequency path. For matrices whose dimensions are multiples of
// 64 this equals the window coverage r_n of §4.2.
func (c *Compressed) CoverageRatio() float64 {
	total := len(c.High) + len(c.Full)
	if total == 0 {
		return 0
	}
	return float64(len(c.High)) / float64(total)
}

// exponentForCode reconstructs the exponent of codeword code (1-based)
// using the implicit base+code lookup under WindowSelection, or the
// codebook table under TopFrequencySelection.
func (c *Compressed) exponentForCode(code int) uint8 {
	if c.Opts.Selection == WindowSelection {
		return uint8(int(c.BaseExp) + code)
	}
	return c.Codebook[code-1]
}

// codeForExponent returns the 1-based codeword for exponent e, or 0 if
// e is an outlier. Used by the encoder.
func (c *Compressed) codeForExponent(e uint8) int {
	if c.Opts.Selection == WindowSelection {
		d := int(e) - int(c.BaseExp)
		if d >= 1 && d <= c.Opts.WindowSize() {
			return d
		}
		return 0
	}
	for i, ce := range c.Codebook {
		if ce == e {
			return i + 1
		}
	}
	return 0
}

// Validate performs structural integrity checks: offset monotonicity,
// buffer lengths consistent with bitmap population counts, and plane
// array sizing. It returns a descriptive error for corrupted values,
// making the format safe to load from untrusted files.
func (c *Compressed) Validate() error {
	if err := c.Opts.validate(); err != nil {
		return err
	}
	n := c.Opts.CodewordBits
	if len(c.Planes) != c.Grid.NumFrags()*n {
		return fmt.Errorf("core: %d planes for %d frags × %d bits", len(c.Planes), c.Grid.NumFrags(), n)
	}
	nb := c.Grid.NumBlocks()
	if len(c.HighOff) != nb+1 || len(c.FullOff) != nb+1 {
		return fmt.Errorf("core: offset arrays sized %d/%d, want %d", len(c.HighOff), len(c.FullOff), nb+1)
	}
	if c.HighOff[0] != 0 || c.FullOff[0] != 0 {
		return fmt.Errorf("core: offsets must start at 0")
	}
	if c.HighOff[nb] != int64(len(c.High)) || c.FullOff[nb] != int64(len(c.Full)) {
		return fmt.Errorf("core: final offsets %d/%d do not match buffer lengths %d/%d",
			c.HighOff[nb], c.FullOff[nb], len(c.High), len(c.Full))
	}
	if c.Opts.Selection == TopFrequencySelection && len(c.Codebook) != c.Opts.WindowSize() {
		return fmt.Errorf("core: codebook has %d entries, want %d", len(c.Codebook), c.Opts.WindowSize())
	}
	for b := 0; b < nb; b++ {
		if c.HighOff[b+1] < c.HighOff[b] || c.FullOff[b+1] < c.FullOff[b] {
			return fmt.Errorf("core: block %d offsets not monotone", b)
		}
		hi, lo := int64(0), int64(0)
		for f := 0; f < tile.FragsPerBlock; f++ {
			m := c.Indicator(b*tile.FragsPerBlock + f)
			hi += int64(popcount(m))
			lo += int64(tile.FragElems - popcount(m))
		}
		if c.HighOff[b+1]-c.HighOff[b] != hi {
			return fmt.Errorf("core: block %d high span %d, bitmaps say %d", b, c.HighOff[b+1]-c.HighOff[b], hi)
		}
		if c.FullOff[b+1]-c.FullOff[b] != lo {
			return fmt.Errorf("core: block %d full span %d, bitmaps say %d", b, c.FullOff[b+1]-c.FullOff[b], lo)
		}
	}
	return nil
}
