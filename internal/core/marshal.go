package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"

	"zipserv/internal/tile"
)

// Serialization format (little-endian):
//
//	magic   [4]byte  "ZTBE"
//	version uint16   1
//	cwBits  uint8
//	select  uint8
//	rows    uint32
//	cols    uint32
//	baseExp int16
//	cbLen   uint16   codebook entries
//	nPlanes uint64
//	nHigh   uint64
//	nFull   uint64
//	codebook, planes, high, full, highOff, fullOff arrays
//	crc32   uint32   IEEE CRC of everything above
//
// Offset arrays are serialised (rather than recomputed) so loading a
// checkpoint does not require a popcount pass over all bitmaps, the
// same reason the paper stores GroupTile offsets explicitly. The CRC
// trailer catches bit rot that the structural Validate cannot (e.g. a
// flipped bit inside one bit-plane that leaves popcounts unchanged).
var magic = [4]byte{'Z', 'T', 'B', 'E'}

const formatVersion = 1

// WriteTo serialises c. It satisfies io.WriterTo.
func (c *Compressed) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw, crc: crc32.NewIEEE()}

	head := struct {
		Magic   [4]byte
		Version uint16
		CwBits  uint8
		Select  uint8
		Rows    uint32
		Cols    uint32
		BaseExp int16
		CbLen   uint16
		NPlanes uint64
		NHigh   uint64
		NFull   uint64
	}{
		Magic:   magic,
		Version: formatVersion,
		CwBits:  uint8(c.Opts.CodewordBits),
		Select:  uint8(c.Opts.Selection),
		Rows:    uint32(c.Grid.Rows),
		Cols:    uint32(c.Grid.Cols),
		BaseExp: c.BaseExp,
		CbLen:   uint16(len(c.Codebook)),
		NPlanes: uint64(len(c.Planes)),
		NHigh:   uint64(len(c.High)),
		NFull:   uint64(len(c.Full)),
	}
	for _, v := range []any{head, c.Codebook, c.Planes, c.High, c.Full, c.HighOff, c.FullOff} {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return cw.n, err
		}
	}
	if err := binary.Write(cw, binary.LittleEndian, cw.crc.Sum32()); err != nil {
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadFrom deserialises into c, replacing its contents, and validates
// the result. It satisfies io.ReaderFrom.
func (c *Compressed) ReadFrom(r io.Reader) (int64, error) {
	cr := &countReader{r: bufio.NewReader(r), crc: crc32.NewIEEE()}
	var head struct {
		Magic   [4]byte
		Version uint16
		CwBits  uint8
		Select  uint8
		Rows    uint32
		Cols    uint32
		BaseExp int16
		CbLen   uint16
		NPlanes uint64
		NHigh   uint64
		NFull   uint64
	}
	if err := binary.Read(cr, binary.LittleEndian, &head); err != nil {
		return cr.n, err
	}
	if head.Magic != magic {
		return cr.n, fmt.Errorf("core: bad magic %q", head.Magic[:])
	}
	if head.Version != formatVersion {
		return cr.n, fmt.Errorf("core: unsupported format version %d", head.Version)
	}
	if head.Rows == 0 || head.Cols == 0 {
		return cr.n, fmt.Errorf("core: zero matrix dimension in header")
	}
	const maxSide = 1 << 20 // 1M rows/cols caps allocation from hostile input
	if head.Rows > maxSide || head.Cols > maxSide {
		return cr.n, fmt.Errorf("core: matrix dimension %d×%d exceeds limit", head.Rows, head.Cols)
	}
	opts := Options{CodewordBits: int(head.CwBits), Selection: Selection(head.Select)}
	if err := opts.validate(); err != nil {
		return cr.n, err
	}
	grid := tile.NewGrid(int(head.Rows), int(head.Cols))
	wantPlanes := uint64(grid.NumFrags()) * uint64(opts.CodewordBits)
	if head.NPlanes != wantPlanes {
		return cr.n, fmt.Errorf("core: header declares %d planes, grid needs %d", head.NPlanes, wantPlanes)
	}
	maxElems := uint64(grid.PaddedRows) * uint64(grid.PaddedCols)
	if head.NHigh > maxElems || head.NFull > maxElems || uint64(head.CbLen) > 15 {
		return cr.n, fmt.Errorf("core: header buffer sizes exceed matrix capacity")
	}

	out := &Compressed{
		Grid:     grid,
		Opts:     opts,
		BaseExp:  head.BaseExp,
		Codebook: make([]uint8, head.CbLen),
		Planes:   make([]uint64, head.NPlanes),
		High:     make([]uint8, head.NHigh),
		Full:     make([]uint16, head.NFull),
		HighOff:  make([]int64, grid.NumBlocks()+1),
		FullOff:  make([]int64, grid.NumBlocks()+1),
	}
	for _, v := range []any{out.Codebook, out.Planes, out.High, out.Full, out.HighOff, out.FullOff} {
		if err := binary.Read(cr, binary.LittleEndian, v); err != nil {
			return cr.n, err
		}
	}
	wantCRC := cr.crc.Sum32()
	var gotCRC uint32
	if err := binary.Read(cr, binary.LittleEndian, &gotCRC); err != nil {
		return cr.n, err
	}
	if gotCRC != wantCRC {
		return cr.n, fmt.Errorf("core: CRC mismatch (%#08x != %#08x): payload corrupted", gotCRC, wantCRC)
	}
	if err := out.Validate(); err != nil {
		return cr.n, err
	}
	*c = *out
	return cr.n, nil
}

// countWriter tracks bytes written and a running CRC of the payload.
type countWriter struct {
	w   io.Writer
	n   int64
	crc hash.Hash32
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	cw.crc.Write(p[:n])
	return n, err
}

// countReader tracks bytes read and a running CRC of the payload.
type countReader struct {
	r   io.Reader
	n   int64
	crc hash.Hash32
}

func (cr *countReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	cr.crc.Write(p[:n])
	return n, err
}
