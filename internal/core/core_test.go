package core

import (
	"math"
	"math/rand"
	"testing"

	"zipserv/internal/bf16"
	"zipserv/internal/tile"
)

// gaussianMatrix builds a rows×cols BF16 matrix of N(0, sigma²) draws,
// the weight model of Appendix A.
func gaussianMatrix(t testing.TB, rows, cols int, sigma float64, seed int64) *bf16.Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := bf16.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = bf16.FromFloat32(float32(rng.NormFloat64() * sigma))
	}
	return m
}

// randomBitsMatrix builds a matrix of uniformly random bit patterns:
// the adversarial input for a lossless codec (includes NaNs, ±Inf,
// subnormals, both zeros, and a flat exponent histogram).
func randomBitsMatrix(t testing.TB, rows, cols int, seed int64) *bf16.Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := bf16.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = bf16.FromBits(uint16(rng.Intn(1 << 16)))
	}
	return m
}

func roundTrip(t *testing.T, m *bf16.Matrix, opts Options) *Compressed {
	t.Helper()
	c, err := CompressWithOptions(m, opts)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate after compress: %v", err)
	}
	got, err := Decompress(c)
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if !m.Equal(got) {
		i := m.FirstDiff(got)
		t.Fatalf("round trip not bit-exact at flat index %d: %#04x → %#04x",
			i, m.Data[i].Bits(), got.Data[i].Bits())
	}
	return c
}

func TestRoundTripGaussian(t *testing.T) {
	// The paper's primary invariant: bit-exact reproduction of
	// Gaussian LLM-like weights across shapes, including non-multiples
	// of the 64×64 BlockTile.
	shapes := []struct{ r, c int }{
		{64, 64}, {128, 128}, {64, 128}, {1, 1}, {7, 9}, {100, 150},
		{63, 65}, {256, 64}, {65, 63}, {512, 512},
	}
	for _, s := range shapes {
		m := gaussianMatrix(t, s.r, s.c, 0.02, int64(s.r*1000+s.c))
		cm := roundTrip(t, m, DefaultOptions())
		// The compression ratio claim only applies to tile-aligned
		// matrices (all real LLM layers are); heavily padded odd
		// shapes pay for encoded padding.
		if s.r%tile.BlockDim == 0 && s.c%tile.BlockDim == 0 && cm.CompressionRatio() < 1.2 {
			t.Errorf("%dx%d: compression ratio %.3f < 1.2 on Gaussian weights",
				s.r, s.c, cm.CompressionRatio())
		}
	}
}

func TestRoundTripAdversarialBits(t *testing.T) {
	// Uniform random bit patterns: almost everything is an outlier, so
	// the format must expand gracefully and still be bit-exact,
	// preserving NaN payloads, infinities, ±0 and subnormals.
	m := randomBitsMatrix(t, 96, 130, 7)
	cm := roundTrip(t, m, DefaultOptions())
	if cm.CompressionRatio() > 1.05 {
		t.Errorf("uniform random bits should not compress, got ratio %.3f", cm.CompressionRatio())
	}
}

func TestRoundTripSpecialValues(t *testing.T) {
	// A matrix densely packed with IEEE special cases.
	specials := []uint16{
		0x0000, 0x8000, // ±0
		0x7F80, 0xFF80, // ±Inf
		0x7FC0, 0x7F81, 0xFFFF, // NaNs with distinct payloads
		0x0001, 0x807F, // subnormals
		0x3F80, 0xBF80, // ±1
		0x0080, 0x7F7F, // smallest normal, largest finite
	}
	m := bf16.NewMatrix(65, 67)
	for i := range m.Data {
		m.Data[i] = bf16.FromBits(specials[i%len(specials)])
	}
	roundTrip(t, m, DefaultOptions())
}

func TestRoundTripConstantMatrix(t *testing.T) {
	// All elements identical: 100% coverage, maximal compression.
	m := bf16.NewMatrix(64, 64)
	for i := range m.Data {
		m.Data[i] = bf16.FromFloat32(0.015625)
	}
	cm := roundTrip(t, m, DefaultOptions())
	if cm.FullCount() != 0 {
		t.Errorf("constant matrix has %d fallback elements, want 0", cm.FullCount())
	}
	// 3 bitmaps (24 B) + 64 high bytes per 64-element frag ⇒ about
	// 11 bits/elem, ratio ≈ 1.45.
	if r := cm.CompressionRatio(); r < 1.4 || r > 1.5 {
		t.Errorf("constant matrix ratio %.3f outside [1.4, 1.5]", r)
	}
}

func TestRoundTripAllZeros(t *testing.T) {
	// Zeros have exponent 0; the window slides to the bottom of the
	// range (BaseExp = −1) and the matrix compresses maximally.
	m := bf16.NewMatrix(70, 70)
	cm := roundTrip(t, m, DefaultOptions())
	if cm.BaseExp != -1 {
		t.Errorf("all-zero matrix BaseExp = %d, want -1", cm.BaseExp)
	}
	if cm.FullCount() != 0 {
		t.Errorf("all-zero matrix has %d fallback elements", cm.FullCount())
	}
}

func TestRoundTripMaxExponentWindow(t *testing.T) {
	// Force the window to the top of the exponent range (Inf/NaN
	// territory): values with exponents 249..255 must round-trip,
	// exercising the BaseExp+code arithmetic at its upper boundary.
	rng := rand.New(rand.NewSource(3))
	m := bf16.NewMatrix(64, 64)
	for i := range m.Data {
		e := uint8(249 + rng.Intn(7))
		m.Data[i] = bf16.Assemble(uint16(rng.Intn(2)), e, uint8(rng.Intn(128)))
	}
	cm := roundTrip(t, m, DefaultOptions())
	if cm.BaseExp != 248 {
		t.Errorf("BaseExp = %d, want 248", cm.BaseExp)
	}
}

func TestRoundTripCodewordBits(t *testing.T) {
	// Ablation A2: 2-, 3- and 4-bit codewords must all be lossless.
	m := gaussianMatrix(t, 128, 96, 0.03, 11)
	for _, n := range []int{2, 3, 4} {
		opts := Options{CodewordBits: n, Selection: WindowSelection}
		cm := roundTrip(t, m, opts)
		if cm.NumPlanesPerFrag() != n {
			t.Errorf("n=%d: %d planes per frag", n, cm.NumPlanesPerFrag())
		}
	}
}

func TestRoundTripTopFrequencySelection(t *testing.T) {
	// Ablation A5: explicit-codebook mode must also be lossless, even
	// on weights with a non-contiguous exponent histogram.
	rng := rand.New(rand.NewSource(13))
	m := bf16.NewMatrix(64, 128)
	// Bimodal exponents: two clusters far apart.
	for i := range m.Data {
		var e uint8
		if rng.Intn(2) == 0 {
			e = uint8(100 + rng.Intn(3))
		} else {
			e = uint8(200 + rng.Intn(3))
		}
		m.Data[i] = bf16.Assemble(uint16(rng.Intn(2)), e, uint8(rng.Intn(128)))
	}
	opts := Options{CodewordBits: 3, Selection: TopFrequencySelection}
	cm := roundTrip(t, m, opts)
	// With a codebook, all six populated exponents fit ⇒ no fallbacks.
	if cm.FullCount() != 0 {
		t.Errorf("codebook mode left %d fallbacks on 6-exponent data", cm.FullCount())
	}
	// The contiguous window can cover only one cluster.
	w, err := CompressWithOptions(m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if w.FullCount() == 0 {
		t.Error("window mode unexpectedly covered a bimodal histogram")
	}
}

func TestCompressRejectsBadOptions(t *testing.T) {
	m := bf16.NewMatrix(8, 8)
	for _, opts := range []Options{
		{CodewordBits: 1, Selection: WindowSelection},
		{CodewordBits: 5, Selection: WindowSelection},
		{CodewordBits: 3, Selection: Selection(9)},
	} {
		if _, err := CompressWithOptions(m, opts); err == nil {
			t.Errorf("options %+v accepted, want error", opts)
		}
	}
}

func TestBestWindow(t *testing.T) {
	var hist [256]int64
	for i := 120; i < 127; i++ {
		hist[i] = 100
	}
	hist[126] = 500
	start, covered := BestWindow(hist, 7)
	if start != 120 || covered != 1100 {
		t.Errorf("BestWindow = (%d, %d), want (120, 1100)", start, covered)
	}
	// Tie-break toward lower start.
	var flat [256]int64
	for i := range flat {
		flat[i] = 1
	}
	if s, _ := BestWindow(flat, 7); s != 0 {
		t.Errorf("flat histogram window start = %d, want 0", s)
	}
	// Window at the very top of the range.
	var top [256]int64
	top[255] = 10
	if s, _ := BestWindow(top, 7); s != 249 {
		t.Errorf("top-heavy histogram start = %d, want 249", s)
	}
}

func TestIndicatorMatchesCoverage(t *testing.T) {
	m := gaussianMatrix(t, 64, 64, 0.02, 21)
	cm := roundTrip(t, m, DefaultOptions())
	hi := 0
	for f := 0; f < cm.Grid.NumFrags(); f++ {
		hi += popcount(cm.Indicator(f))
	}
	if hi != cm.HighCount() {
		t.Errorf("indicator popcount %d != High length %d", hi, cm.HighCount())
	}
	if hi+cm.FullCount() != cm.Grid.PaddedRows*cm.Grid.PaddedCols {
		t.Errorf("high+full = %d, want padded element count %d",
			hi+cm.FullCount(), cm.Grid.PaddedRows*cm.Grid.PaddedCols)
	}
}

func TestFragStartsConsistentWithOffsets(t *testing.T) {
	m := gaussianMatrix(t, 130, 200, 0.02, 5)
	cm := roundTrip(t, m, DefaultOptions())
	// Walking all frags sequentially must visit exactly the per-block
	// offsets, and FragStarts must agree with the walk (invariant 4 of
	// DESIGN.md: dynamic addressing is a permutation).
	for b := 0; b < cm.Grid.NumBlocks(); b++ {
		h, l := cm.HighOff[b], cm.FullOff[b]
		for f := 0; f < tile.FragsPerBlock; f++ {
			frag := b*tile.FragsPerBlock + f
			gh, gl := cm.FragStarts(frag)
			if gh != h || gl != l {
				t.Fatalf("frag %d: FragStarts (%d,%d), walk says (%d,%d)", frag, gh, gl, h, l)
			}
			hi := popcount(cm.Indicator(frag))
			h += int64(hi)
			l += int64(tile.FragElems - hi)
		}
		if h != cm.HighOff[b+1] || l != cm.FullOff[b+1] {
			t.Fatalf("block %d: walk ends at (%d,%d), offsets say (%d,%d)",
				b, h, l, cm.HighOff[b+1], cm.FullOff[b+1])
		}
	}
}

func TestSizeAccounting(t *testing.T) {
	// Invariant 3: encoded size is exactly 8·n bytes of bitmaps per
	// FragTile + 1 byte per in-window element + 2 bytes per outlier +
	// offsets + header + codebook.
	m := gaussianMatrix(t, 100, 100, 0.02, 17)
	cm := roundTrip(t, m, DefaultOptions())
	want := 32 + 8*3*cm.Grid.NumFrags() + cm.HighCount() + 2*cm.FullCount() +
		8*2*(cm.Grid.NumBlocks()+1) + len(cm.Codebook)
	if got := cm.SizeBytes(); got != want {
		t.Errorf("SizeBytes = %d, want %d", got, want)
	}
}

func TestGaussianCompressionRatioNearPaper(t *testing.T) {
	// §3.1: BF16 LLM weights compress at ≈1.5× under a 7-exponent
	// window (theoretical 1.51×; measured model footprints ~71%).
	// Gaussian weights must land in that neighbourhood.
	m := gaussianMatrix(t, 512, 512, 0.02, 99)
	cm := roundTrip(t, m, DefaultOptions())
	if r := cm.CompressionRatio(); r < 1.35 || r > 1.55 {
		t.Errorf("Gaussian ratio %.3f outside [1.35, 1.55]", r)
	}
	if cov := cm.CoverageRatio(); cov < 0.93 {
		t.Errorf("window coverage %.3f < 0.93 on Gaussian weights", cov)
	}
	if bpe := cm.BitsPerElement(); math.Abs(bpe-11.3) > 0.8 {
		t.Errorf("bits/element %.2f, paper reports ≈11.3", bpe)
	}
}

func TestDecodeFragMatchesDecompress(t *testing.T) {
	m := gaussianMatrix(t, 128, 128, 0.02, 31)
	cm := roundTrip(t, m, DefaultOptions())
	g := cm.Grid
	var fv FragView
	for frag := 0; frag < g.NumFrags(); frag += 7 { // sample
		cm.DecodeFrag(frag, &fv)
		b, f := frag/tile.FragsPerBlock, frag%tile.FragsPerBlock
		for p := 0; p < tile.FragElems; p++ {
			r, c := g.FromCoord(tile.Coord{Block: b, Frag: f, Pos: p})
			if !g.InBounds(r, c) {
				continue
			}
			if fv[p] != m.At(r, c) {
				t.Fatalf("frag %d pos %d: decoded %#04x, matrix has %#04x",
					frag, p, fv[p].Bits(), m.At(r, c).Bits())
			}
		}
	}
}

func TestCountersDeterministicAndPlausible(t *testing.T) {
	m := gaussianMatrix(t, 128, 128, 0.02, 41)
	cm, err := Compress(m)
	if err != nil {
		t.Fatal(err)
	}
	_, c1, err := DecompressCounted(cm)
	if err != nil {
		t.Fatal(err)
	}
	_, c2, err := DecompressCounted(cm)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("counters are not deterministic across runs")
	}
	if c1.Elements != int64(cm.Grid.PaddedRows*cm.Grid.PaddedCols) {
		t.Errorf("Elements = %d, want %d", c1.Elements, cm.Grid.PaddedRows*cm.Grid.PaddedCols)
	}
	// Exactly one POPC per element (the paper's dynamic addressing).
	if c1.POPC != c1.Elements {
		t.Errorf("POPC = %d, want one per element (%d)", c1.POPC, c1.Elements)
	}
	// One value-buffer LDS per element, plus codebook loads only in
	// table mode.
	if c1.LDS != c1.Elements {
		t.Errorf("LDS = %d, want %d in implicit-lookup mode", c1.LDS, c1.Elements)
	}
	if c1.BytesRead != int64(cm.SizeBytes()) {
		t.Errorf("BytesRead = %d, want compressed size %d", c1.BytesRead, cm.SizeBytes())
	}
	// Figure 12(a): LOP3 and IADD dominate; each should exceed 2 ops
	// per element on mostly-high-path data.
	if c1.LOP3 < 2*c1.Elements || c1.IADD < c1.Elements {
		t.Errorf("implausibly low ALU counts: LOP3=%d IADD=%d for %d elements",
			c1.LOP3, c1.IADD, c1.Elements)
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{LOP3: 1, IADD: 2, SHF: 3, POPC: 4, LDS: 5, BytesRead: 6, Elements: 7}
	b := a
	a.Add(b)
	want := Counters{LOP3: 2, IADD: 4, SHF: 6, POPC: 8, LDS: 10, BytesRead: 12, Elements: 14}
	if a != want {
		t.Errorf("Add = %+v, want %+v", a, want)
	}
	if want.ALUOps() != 2+4+6+8 {
		t.Errorf("ALUOps = %d", want.ALUOps())
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	fresh := func() *Compressed {
		m := gaussianMatrix(t, 64, 64, 0.02, 51)
		cm, err := Compress(m)
		if err != nil {
			t.Fatal(err)
		}
		return cm
	}
	mutations := map[string]func(*Compressed){
		"truncatedPlanes": func(c *Compressed) { c.Planes = c.Planes[:len(c.Planes)-1] },
		"offsetStart":     func(c *Compressed) { c.HighOff[0] = 1 },
		"offsetEnd":       func(c *Compressed) { c.FullOff[len(c.FullOff)-1]++ },
		"indicatorFlip": func(c *Compressed) {
			// Flip a bit at a fallback position in every plane of some
			// frag: the indicator popcount changes, so the per-block
			// offsets no longer match the bitmaps.
			for f := 0; f < c.Grid.NumFrags(); f++ {
				m := c.Indicator(f)
				if m != ^uint64(0) {
					var p uint
					for p = 0; p < 64; p++ {
						if m>>p&1 == 0 {
							break
						}
					}
					c.Planes[f*c.Opts.CodewordBits] |= 1 << p
					return
				}
			}
			c.HighOff[0] = 1 // all-ones indicator everywhere: fall back
		},
		"badCodewordBits":  func(c *Compressed) { c.Opts.CodewordBits = 9 },
		"shortOffsetArray": func(c *Compressed) { c.HighOff = c.HighOff[:1] },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			c := fresh()
			mutate(c)
			if err := c.Validate(); err == nil {
				t.Error("corruption not detected")
			}
		})
	}
}

func TestDecompressRejectsInvalid(t *testing.T) {
	m := gaussianMatrix(t, 64, 64, 0.02, 61)
	cm, err := Compress(m)
	if err != nil {
		t.Fatal(err)
	}
	// Set a plane bit at a fallback position so the indicator popcount
	// disagrees with the recorded offsets.
	for f := 0; f < cm.Grid.NumFrags(); f++ {
		if m := cm.Indicator(f); m != ^uint64(0) {
			var p uint
			for p = 0; p < 64; p++ {
				if m>>p&1 == 0 {
					break
				}
			}
			cm.Planes[f*cm.Opts.CodewordBits] |= 1 << p
			break
		}
	}
	if _, err := Decompress(cm); err == nil {
		t.Error("Decompress accepted corrupted bitmaps")
	}
}

func TestCompressEmptyMatrix(t *testing.T) {
	if _, err := Compress(&bf16.Matrix{}); err == nil {
		t.Error("expected error compressing empty matrix")
	}
}
