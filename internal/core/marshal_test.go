package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"zipserv/internal/bf16"
)

func marshalRoundTrip(t *testing.T, cm *Compressed) *Compressed {
	t.Helper()
	var buf bytes.Buffer
	n, err := cm.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	var back Compressed
	rn, err := back.ReadFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if rn != n {
		t.Fatalf("ReadFrom consumed %d bytes, wrote %d", rn, n)
	}
	return &back
}

func TestMarshalRoundTrip(t *testing.T) {
	m := gaussianMatrix(t, 100, 130, 0.02, 71)
	cm, err := Compress(m)
	if err != nil {
		t.Fatal(err)
	}
	back := marshalRoundTrip(t, cm)
	got, err := Decompress(back)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(got) {
		t.Error("matrix does not survive marshal → unmarshal → decompress")
	}
}

func TestMarshalRoundTripAllModes(t *testing.T) {
	m := gaussianMatrix(t, 64, 64, 0.03, 73)
	for _, opts := range []Options{
		{CodewordBits: 2, Selection: WindowSelection},
		{CodewordBits: 3, Selection: WindowSelection},
		{CodewordBits: 4, Selection: WindowSelection},
		{CodewordBits: 3, Selection: TopFrequencySelection},
	} {
		cm, err := CompressWithOptions(m, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		back := marshalRoundTrip(t, cm)
		got, err := Decompress(back)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if !m.Equal(got) {
			t.Errorf("%+v: not bit-exact after serialisation", opts)
		}
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"badMagic":  append([]byte("XXXX"), make([]byte, 60)...),
		"truncated": {'Z', 'T', 'B', 'E', 1, 0},
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			var c Compressed
			if _, err := c.ReadFrom(bytes.NewReader(data)); err == nil {
				t.Error("garbage input accepted")
			}
		})
	}
}

func TestReadFromRejectsCorruptedBody(t *testing.T) {
	m := gaussianMatrix(t, 64, 64, 0.02, 77)
	cm, err := Compress(m)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := cm.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one byte inside the bitmap region; Validate must notice the
	// disagreement between bitmaps and offsets.
	corrupted := append([]byte(nil), data...)
	corrupted[64] ^= 0xFF
	var c Compressed
	if _, err := c.ReadFrom(bytes.NewReader(corrupted)); err == nil {
		t.Error("corrupted body accepted")
	}
	// Truncation mid-array must also fail cleanly.
	var c2 Compressed
	if _, err := c2.ReadFrom(bytes.NewReader(data[:len(data)-3])); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestReadFromRejectsHostileHeader(t *testing.T) {
	// A header declaring absurd dimensions must be rejected before any
	// large allocation happens.
	var buf bytes.Buffer
	m := gaussianMatrix(t, 64, 64, 0.02, 79)
	cm, err := Compress(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cm.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// rows field lives at offset 8 (after magic+version+cw+sel).
	hostile := append([]byte(nil), data...)
	hostile[8], hostile[9], hostile[10], hostile[11] = 0xFF, 0xFF, 0xFF, 0x7F
	var c Compressed
	if _, err := c.ReadFrom(bytes.NewReader(hostile)); err == nil {
		t.Error("hostile dimensions accepted")
	}
}

func TestQuickCompressRoundTrip(t *testing.T) {
	// Property: any 4096-element bit pattern soup survives the full
	// compress → marshal → unmarshal → decompress pipeline bit-exactly.
	f := func(seed int64, rowsSel, colsSel uint8) bool {
		rows := int(rowsSel%80) + 1
		cols := int(colsSel%80) + 1
		m := randomBitsMatrix(t, rows, cols, seed)
		cm, err := Compress(m)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if _, err := cm.WriteTo(&buf); err != nil {
			return false
		}
		var back Compressed
		if _, err := back.ReadFrom(&buf); err != nil {
			return false
		}
		got, err := Decompress(&back)
		if err != nil {
			return false
		}
		return m.Equal(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickGaussianRoundTrip(t *testing.T) {
	// Property: Gaussian weights of any σ round-trip and compress.
	f := func(seed int64, sigmaSel uint8) bool {
		sigma := 0.001 + float64(sigmaSel)/256.0 // (0.001, 1.0)
		// Tile-aligned shape so padding does not dilute the ratio.
		m := gaussianMatrix(t, 64, 64, sigma, seed)
		cm, err := Compress(m)
		if err != nil {
			return false
		}
		got, err := Decompress(cm)
		if err != nil {
			return false
		}
		return m.Equal(got) && cm.CompressionRatio() > 1.3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

var benchSink *bf16.Matrix

func BenchmarkCompress512(b *testing.B) {
	m := gaussianMatrix(b, 512, 512, 0.02, 1)
	b.SetBytes(int64(m.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress512(b *testing.B) {
	m := gaussianMatrix(b, 512, 512, 0.02, 1)
	cm, err := Compress(m)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(m.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := Decompress(cm)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = out
	}
}
