package core

import (
	"bytes"
	"testing"

	"zipserv/internal/bf16"
)

// FuzzReadFrom throws arbitrary bytes at the TCA-TBE deserialiser: it
// must either reject the input with an error or produce a structurally
// valid Compressed that decompresses without panicking. Run with
// `go test -fuzz=FuzzReadFrom ./internal/core` for open-ended fuzzing;
// plain `go test` executes the seed corpus.
func FuzzReadFrom(f *testing.F) {
	// Seeds: a valid stream, a truncation, a header-corrupted variant.
	m := bf16.NewMatrix(64, 64)
	for i := range m.Data {
		m.Data[i] = bf16.FromFloat32(float32(i%31) * 0.01)
	}
	cm, err := Compress(m)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := cm.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	corrupted := append([]byte(nil), valid...)
	corrupted[5] ^= 0xFF
	f.Add(corrupted)
	f.Add([]byte{})
	f.Add([]byte("ZTBE"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var c Compressed
		if _, err := c.ReadFrom(bytes.NewReader(data)); err != nil {
			return // rejected: fine
		}
		// Accepted input must be fully usable.
		if err := c.Validate(); err != nil {
			t.Fatalf("ReadFrom accepted a stream that fails Validate: %v", err)
		}
		if _, err := Decompress(&c); err != nil {
			t.Fatalf("ReadFrom accepted a stream that fails Decompress: %v", err)
		}
	})
}

// FuzzCompressDecompress feeds arbitrary bit patterns through the full
// codec: the round trip must always be bit-exact.
func FuzzCompressDecompress(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2}, uint8(5), uint8(7))
	f.Add([]byte{0xFF, 0x7F, 0x80, 0x00}, uint8(64), uint8(64))
	// Degenerate corners: empty raw (an all-zero matrix), a single
	// 1×1 element, and a large all-identical-symbol matrix.
	f.Add([]byte{}, uint8(0), uint8(0))
	f.Add([]byte{0x9a, 0x3d}, uint8(0), uint8(0))
	f.Add(bytes.Repeat([]byte{0x9a, 0x3d}, 96*96), uint8(95), uint8(95))
	f.Fuzz(func(t *testing.T, raw []byte, rowsSel, colsSel uint8) {
		rows := int(rowsSel%96) + 1
		cols := int(colsSel%96) + 1
		m := bf16.NewMatrix(rows, cols)
		for i := range m.Data {
			var v uint16
			if 2*i+1 < len(raw) {
				v = uint16(raw[2*i]) | uint16(raw[2*i+1])<<8
			}
			m.Data[i] = bf16.FromBits(v)
		}
		cm, err := Compress(m)
		if err != nil {
			t.Fatalf("Compress failed on valid matrix: %v", err)
		}
		got, err := Decompress(cm)
		if err != nil {
			t.Fatalf("Decompress failed: %v", err)
		}
		if !m.Equal(got) {
			t.Fatalf("round trip not bit-exact at %d", m.FirstDiff(got))
		}
	})
}
