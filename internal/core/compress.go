package core

import (
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"sync"

	"zipserv/internal/bf16"
	"zipserv/internal/tile"
)

// Compress encodes a BF16 weight matrix into TCA-TBE form using the
// paper's default configuration (3-bit codewords, contiguous window).
// It implements Algorithm 1: a global exponent-analysis phase followed
// by per-tile encoding. The encoding is lossless: Decompress returns
// the original matrix bit-for-bit.
func Compress(m *bf16.Matrix) (*Compressed, error) {
	return CompressWithOptions(m, DefaultOptions())
}

// CompressWithOptions encodes m with explicit codec options.
func CompressWithOptions(m *bf16.Matrix, opts Options) (*Compressed, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if m.Rows <= 0 || m.Cols <= 0 {
		return nil, fmt.Errorf("core: cannot compress empty %d×%d matrix", m.Rows, m.Cols)
	}

	// Phase I: global exponent analysis.
	hist := exponentHistogram(m)
	c := &Compressed{Grid: tile.NewGrid(m.Rows, m.Cols), Opts: opts}
	switch opts.Selection {
	case WindowSelection:
		start, _ := BestWindow(hist, opts.WindowSize())
		c.BaseExp = int16(start) - 1
		c.Codebook = make([]uint8, opts.WindowSize())
		for i := range c.Codebook {
			c.Codebook[i] = uint8(start + i)
		}
	case TopFrequencySelection:
		c.Codebook = topExponents(hist, opts.WindowSize())
		c.BaseExp = int16(c.Codebook[0]) - 1 // informational only
	}

	// Phase II: tile encoding. Blocks are visited row-major; frags in
	// storage order; positions row-major within each frag — the same
	// order the decoder uses, so offsets line up with no per-element
	// index metadata. Blocks are independent, so they encode in
	// parallel across GOMAXPROCS workers into per-block buffers that
	// are stitched in order afterwards: output bytes are identical to
	// the sequential encoder's (the checkpoint tests rely on that
	// determinism).
	n := opts.CodewordBits
	g := c.Grid
	c.Planes = make([]uint64, g.NumFrags()*n)
	c.HighOff = make([]int64, g.NumBlocks()+1)
	c.FullOff = make([]int64, g.NumBlocks()+1)

	highs := make([][]uint8, g.NumBlocks())
	fulls := make([][]uint16, g.NumBlocks())
	parallelBlocks(g.NumBlocks(), func(lo, hi int) {
		for b := lo; b < hi; b++ {
			highs[b], fulls[b] = c.encodeBlock(m, b)
		}
	})

	var totalHigh, totalFull int
	for b := 0; b < g.NumBlocks(); b++ {
		totalHigh += len(highs[b])
		totalFull += len(fulls[b])
	}
	c.High = make([]uint8, 0, totalHigh)
	c.Full = make([]uint16, 0, totalFull)
	for b := 0; b < g.NumBlocks(); b++ {
		c.High = append(c.High, highs[b]...)
		c.Full = append(c.Full, fulls[b]...)
		c.HighOff[b+1] = int64(len(c.High))
		c.FullOff[b+1] = int64(len(c.Full))
	}
	return c, nil
}

// encodeBlock encodes one 64×64 BlockTile, writing its bit-planes into
// the shared Planes array (disjoint region per block) and returning
// its value buffers. Padding elements encode as codeword 1 with zero
// sign/mantissa — one High byte each, never read back.
func (c *Compressed) encodeBlock(m *bf16.Matrix, b int) (high []uint8, full []uint16) {
	const padCode = 1
	n := c.Opts.CodewordBits
	g := c.Grid
	for f := 0; f < tile.FragsPerBlock; f++ {
		frag := b*tile.FragsPerBlock + f
		planes := c.Planes[frag*n : frag*n+n]
		for p := 0; p < tile.FragElems; p++ {
			r, col := g.FromCoord(tile.Coord{Block: b, Frag: f, Pos: p})
			var w bf16.BF16
			pad := !g.InBounds(r, col)
			if !pad {
				w = m.At(r, col)
			}
			code := 0
			switch {
			case pad:
				code = padCode
				w = 0 // sign 0, mantissa 0
			default:
				code = c.codeForExponent(w.Exponent())
			}
			if code != 0 {
				for bit := 0; bit < n; bit++ {
					planes[bit] |= uint64((code>>bit)&1) << p
				}
				high = append(high, w.PackSignMantissa())
			} else {
				full = append(full, w.Bits())
			}
		}
	}
	return high, full
}

// parallelBlocks splits [0, n) into contiguous chunks across
// GOMAXPROCS workers.
func parallelBlocks(n int, work func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		work(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			work(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// exponentHistogram counts the raw 8-bit exponent field of every
// in-bounds element.
func exponentHistogram(m *bf16.Matrix) [256]int64 {
	var hist [256]int64
	for _, w := range m.Data {
		hist[w.Exponent()]++
	}
	return hist
}

// BestWindow returns the start of the width-k window over exponent
// values [0,255] with maximal total count, and that count. Ties are
// broken toward the lower start, making compression deterministic.
// This is SelectTop7ConsecutiveExponents of Algorithm 1 (generalised
// to any k).
func BestWindow(hist [256]int64, k int) (start int, covered int64) {
	if k <= 0 || k > 256 {
		panic(fmt.Sprintf("core: window width %d out of range", k))
	}
	var sum int64
	for i := 0; i < k; i++ {
		sum += hist[i]
	}
	best, bestStart := sum, 0
	for s := 1; s+k <= 256; s++ {
		sum += hist[s+k-1] - hist[s-1]
		if sum > best {
			best, bestStart = sum, s
		}
	}
	return bestStart, best
}

// topExponents returns the k individually most frequent exponent
// values, sorted ascending (deterministic tie-break by value).
func topExponents(hist [256]int64, k int) []uint8 {
	type ec struct {
		e uint8
		n int64
	}
	all := make([]ec, 256)
	for i := range all {
		all[i] = ec{uint8(i), hist[i]}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].e < all[j].e
	})
	top := make([]uint8, k)
	for i := 0; i < k; i++ {
		top[i] = all[i].e
	}
	sort.Slice(top, func(i, j int) bool { return top[i] < top[j] })
	return top
}

func popcount(x uint64) int { return bits.OnesCount64(x) }
