package core

import (
	"zipserv/internal/bf16"
	"zipserv/internal/tile"
)

// Counters tallies the architectural events the decoder generates,
// mirroring what NVIDIA Nsight Compute reports in the paper's
// micro-level analysis (Figure 12): integer/logical ALU instructions
// (LOP3, IADD, SHF), population counts (POPC), shared-memory loads
// (LDS), and compressed bytes consumed from DRAM. Counts are
// deterministic functions of the bitmap contents, exactly as on real
// hardware where every lane executes the same branch-free sequence.
type Counters struct {
	LOP3 int64 // 3-input logic ops (bitmap OR, field merge)
	IADD int64 // integer adds (mask construction, implicit lookup)
	SHF  int64 // funnel shifts / bit extracts
	POPC int64 // population counts (dynamic addressing)
	LDS  int64 // shared-memory loads (value-buffer fetches)

	BytesRead int64 // compressed bytes consumed
	Elements  int64 // elements decoded
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.LOP3 += other.LOP3
	c.IADD += other.IADD
	c.SHF += other.SHF
	c.POPC += other.POPC
	c.LDS += other.LDS
	c.BytesRead += other.BytesRead
	c.Elements += other.Elements
}

// ALUOps returns the total integer-pipeline instruction count.
func (c *Counters) ALUOps() int64 { return c.LOP3 + c.IADD + c.SHF + c.POPC }

// FragView is a decoded 8×8 FragTile in row-major order, the register
// image a warp holds after decompression (lane i owns elements 2i and
// 2i+1).
type FragView [tile.FragElems]bf16.BF16

// Decompress reconstructs the original matrix bit-for-bit. It walks
// blocks and frags in storage order, decoding each FragTile with the
// thread-local procedure of Algorithm 2 and discarding padding.
func Decompress(c *Compressed) (*bf16.Matrix, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	g := c.Grid
	m := bf16.NewMatrix(g.Rows, g.Cols)
	var fv FragView
	for b := 0; b < g.NumBlocks(); b++ {
		startH, startL := c.HighOff[b], c.FullOff[b]
		for f := 0; f < tile.FragsPerBlock; f++ {
			frag := b*tile.FragsPerBlock + f
			c.decodeFrag(frag, startH, startL, &fv, nil)
			for p := 0; p < tile.FragElems; p++ {
				r, col := g.FromCoord(tile.Coord{Block: b, Frag: f, Pos: p})
				if g.InBounds(r, col) {
					m.Set(r, col, fv[p])
				}
			}
			hi := popcount(c.Indicator(frag))
			startH += int64(hi)
			startL += int64(tile.FragElems - hi)
		}
	}
	return m, nil
}

// DecompressCounted is Decompress plus architectural event counting;
// it is the instrumented path behind Figure 12 and the standalone
// decompression benchmarks (Figure 13).
func DecompressCounted(c *Compressed) (*bf16.Matrix, Counters, error) {
	var ctr Counters
	if err := c.Validate(); err != nil {
		return nil, ctr, err
	}
	g := c.Grid
	m := bf16.NewMatrix(g.Rows, g.Cols)
	var fv FragView
	for b := 0; b < g.NumBlocks(); b++ {
		startH, startL := c.HighOff[b], c.FullOff[b]
		for f := 0; f < tile.FragsPerBlock; f++ {
			frag := b*tile.FragsPerBlock + f
			c.decodeFrag(frag, startH, startL, &fv, &ctr)
			for p := 0; p < tile.FragElems; p++ {
				r, col := g.FromCoord(tile.Coord{Block: b, Frag: f, Pos: p})
				if g.InBounds(r, col) {
					m.Set(r, col, fv[p])
				}
			}
			hi := popcount(c.Indicator(frag))
			startH += int64(hi)
			startL += int64(tile.FragElems - hi)
		}
	}
	ctr.BytesRead = int64(c.SizeBytes())
	return m, ctr, nil
}

// FragStarts returns the High and Full buffer offsets at which global
// FragTile frag begins. Offsets are stored only per BlockTile (the
// paper's GroupTile offset array); within a block they are derived by
// summing indicator popcounts of the preceding frags — the same
// prefix-sum the GPU performs warp-locally.
func (c *Compressed) FragStarts(frag int) (startH, startL int64) {
	b := frag / tile.FragsPerBlock
	startH, startL = c.HighOff[b], c.FullOff[b]
	for f := b * tile.FragsPerBlock; f < frag; f++ {
		hi := popcount(c.Indicator(f))
		startH += int64(hi)
		startL += int64(tile.FragElems - hi)
	}
	return startH, startL
}

// DecodeFrag decodes global FragTile frag into a FragView using
// Algorithm 2. It is the random-access entry point used by the fused
// ZipGEMM kernel; sequential consumers should track offsets
// incrementally instead of calling FragStarts per tile.
func (c *Compressed) DecodeFrag(frag int, out *FragView) {
	startH, startL := c.FragStarts(frag)
	c.decodeFrag(frag, startH, startL, out, nil)
}

// DecodeFragAt decodes FragTile frag given its known buffer offsets,
// optionally counting architectural events into ctr (nil to skip).
func (c *Compressed) DecodeFragAt(frag int, startH, startL int64, out *FragView, ctr *Counters) {
	c.decodeFrag(frag, startH, startL, out, ctr)
}

// decodeFrag implements the three-stage thread-local decompressor of
// §4.3.2 for one 8×8 FragTile:
//
//  1. Spatial bitmap indicator: M = B1 | B2 | B3 classifies every
//     position as compressed (1) or fallback (0).
//  2. Dynamic addressing: lane offsets are prefix popcounts over M —
//     in-window elements index High by the count of 1s below their
//     position, outliers index Full by the count of 0s.
//  3. Fast exponent reassembly: exponent = BaseExp + code (implicit
//     lookup), fused with the packed sign/mantissa byte into a BF16.
//
// The loop nests lanes × slots rather than flat positions to mirror
// warp execution: every lane runs the identical instruction sequence,
// which is what the Counters tally models.
func (c *Compressed) decodeFrag(frag int, startH, startL int64, out *FragView, ctr *Counters) {
	n := c.Opts.CodewordBits
	planes := c.Planes[frag*n : frag*n+n]
	m := uint64(0)
	for _, pl := range planes {
		m |= pl
	}
	implicit := c.Opts.Selection == WindowSelection

	for lane := 0; lane < tile.WarpLanes; lane++ {
		for k := 0; k < tile.ElemsPerLane; k++ {
			p := uint(tile.ElemsPerLane*lane + k)
			mask := uint64(1)<<p - 1
			idxH := popcount(m & mask)
			if m>>p&1 == 1 {
				// Case A: high-frequency path.
				packed := c.High[startH+int64(idxH)]
				code := 0
				for bit := 0; bit < n; bit++ {
					code |= int(planes[bit]>>p&1) << bit
				}
				sign, mant := bf16.UnpackSignMantissa(packed)
				out[p] = bf16.Assemble(sign, c.exponentForCode(code), mant)
			} else {
				// Case B: fallback path.
				idxL := int(p) - idxH
				out[p] = bf16.FromBits(c.Full[startL+int64(idxL)])
			}
		}
	}

	if ctr != nil {
		ctr.Add(fragDecodeCost(n, popcount(m), implicit))
	}
}

// DecodeALUOpsPerElement returns the expected integer-pipeline
// instructions (LOP3+IADD+SHF+POPC) per decoded element for an n-bit
// codeword scheme with the given in-window coverage. It is the
// continuous form of fragDecodeCost, used by the GPU cost model to
// price the fused kernel's ALU stream; the two are cross-checked by
// tests.
func DecodeALUOpsPerElement(n int, coverage float64) float64 {
	indicator := float64(n-1) / float64(tile.ElemsPerLane) // per-lane OR, amortised over 2 elems
	base := 5.0                                            // mask SHF+IADD, POPC, mode SHF+LOP3
	high := coverage * float64((n+2)+(n+1)+1)              // code gather+reassembly SHF/LOP3 + implicit IADD
	low := (1 - coverage) * 1.0                            // fallback index IADD
	return indicator + base + high + low
}

// fragDecodeCost returns the deterministic instruction cost of
// decoding one FragTile with hi in-window elements out of 64, using
// n bit-planes. The per-element sequences follow the CUDA decoder
// sketch in §4.3.2:
//
//	indicator:  n−1 LOP3 per lane (OR of n planes, once per lane);
//	per element: 1 SHF + 1 IADD (mask), 1 POPC (prefix count),
//	             1 SHF + 1 LOP3 (mode test);
//	high path:  n SHF + n−1 LOP3 (code gather), 1 IADD (implicit
//	            lookup; an LDS instead when a codebook table is used),
//	            2 SHF + 2 LOP3 (BF16 reassembly), 1 LDS (High fetch);
//	fallback:   1 IADD (zero count), 1 LDS (Full fetch).
func fragDecodeCost(n, hi int, implicit bool) Counters {
	lo := tile.FragElems - hi
	var ct Counters
	lanes := int64(tile.WarpLanes)
	ct.LOP3 += lanes * int64(n-1) // indicator OR

	perElem := int64(tile.FragElems)
	ct.SHF += perElem * 2  // mask shift + mode-test shift
	ct.IADD += perElem * 1 // mask −1
	ct.POPC += perElem * 1
	ct.LOP3 += perElem * 1 // mode-test AND

	h := int64(hi)
	ct.SHF += h * int64(n+2)    // code gather + reassembly shifts
	ct.LOP3 += h * int64(n-1+2) // code OR-merge + reassembly merges
	if implicit {
		ct.IADD += h // base + code
	} else {
		ct.LDS += h // codebook table lookup
	}
	ct.LDS += h // High fetch

	l := int64(lo)
	ct.IADD += l // p − idxH
	ct.LDS += l  // Full fetch

	ct.Elements += int64(tile.FragElems)
	return ct
}
