// Package quant implements symmetric per-channel int8 weight
// quantization (the W8A16 regime of Marlin-class kernels) and its
// composition with lossless entropy coding — the §7 claim that
// "ZipServ is orthogonal to lossy methods and can be applied atop
// quantized weights to exploit residual redundancy" (citing the
// Ecco/DECA line of work).
//
// Quantized int8 weights drawn from Gaussian BF16 weights are NOT
// uniformly distributed: they follow a discrete bell curve with
// entropy well below 8 bits, so a lossless coder shrinks them further
// with zero additional error. CompressQuantized measures exactly that
// residual redundancy with the same rANS coder used by the DietGPU
// baseline.
package quant

import (
	"fmt"
	"math"

	"zipserv/internal/bf16"
	"zipserv/internal/rans"
)

// Matrix is a per-row symmetrically quantized int8 weight matrix:
// W[r][c] ≈ Q[r][c] × Scales[r].
type Matrix struct {
	Rows, Cols int
	Q          []int8
	Scales     []float32 // one positive scale per row (0 for all-zero rows)
}

// Quantize converts a BF16 matrix to int8 with per-row max-abs
// scaling. Non-finite inputs are rejected: lossy quantization of NaN
// or Inf weights has no meaningful round trip.
func Quantize(m *bf16.Matrix) (*Matrix, error) {
	if m.Rows <= 0 || m.Cols <= 0 {
		return nil, fmt.Errorf("quant: empty matrix %d×%d", m.Rows, m.Cols)
	}
	q := &Matrix{
		Rows: m.Rows, Cols: m.Cols,
		Q:      make([]int8, m.Rows*m.Cols),
		Scales: make([]float32, m.Rows),
	}
	for r := 0; r < m.Rows; r++ {
		maxAbs := float64(0)
		for c := 0; c < m.Cols; c++ {
			w := m.At(r, c)
			if w.IsNaN() || w.IsInf() {
				return nil, fmt.Errorf("quant: non-finite weight at (%d,%d)", r, c)
			}
			if a := math.Abs(w.Float64()); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			continue // all-zero row: scale 0, all q = 0
		}
		scale := maxAbs / 127
		q.Scales[r] = float32(scale)
		for c := 0; c < m.Cols; c++ {
			v := math.RoundToEven(m.At(r, c).Float64() / scale)
			if v > 127 {
				v = 127
			}
			if v < -127 {
				v = -127
			}
			q.Q[r*m.Cols+c] = int8(v)
		}
	}
	return q, nil
}

// Dequantize reconstructs BF16 weights (lossy: within half a scale
// step of the original).
func (q *Matrix) Dequantize() *bf16.Matrix {
	m := bf16.NewMatrix(q.Rows, q.Cols)
	for r := 0; r < q.Rows; r++ {
		s := float64(q.Scales[r])
		for c := 0; c < q.Cols; c++ {
			m.Set(r, c, bf16.FromFloat32(float32(float64(q.Q[r*q.Cols+c])*s)))
		}
	}
	return m
}

// SizeBytes returns the quantized footprint: one byte per element plus
// 4 bytes per row scale.
func (q *Matrix) SizeBytes() int { return len(q.Q) + 4*len(q.Scales) }

// BitsPerElement returns the effective storage per weight.
func (q *Matrix) BitsPerElement() float64 {
	return 8 * float64(q.SizeBytes()) / float64(q.Rows*q.Cols)
}

// MaxAbsError returns the largest absolute reconstruction error
// against the original matrix, and the theoretical bound (half a step
// of the coarsest row, plus BF16 rounding).
func (q *Matrix) MaxAbsError(orig *bf16.Matrix) (gotMax, bound float64) {
	deq := q.Dequantize()
	for r := 0; r < q.Rows; r++ {
		// Half a quantization step (0.5·scale) plus BF16 rounding of
		// the reconstruction, which near the row maximum of 127·scale
		// is up to half a BF16 ULP ≈ 127·scale/256 ≈ 0.496·scale.
		rowBound := float64(q.Scales[r]) * 1.0
		if rowBound > bound {
			bound = rowBound
		}
		for c := 0; c < q.Cols; c++ {
			d := math.Abs(orig.At(r, c).Float64() - deq.At(r, c).Float64())
			if d > gotMax {
				gotMax = d
			}
		}
	}
	return gotMax, bound
}

// Compressed is a quantized matrix whose int8 stream has additionally
// been entropy coded (lossless on top of lossy).
type Compressed struct {
	Rows, Cols int
	Scales     []float32
	Stream     *rans.Stream
}

// CompressQuantized entropy codes the int8 stream of q with rANS,
// exploiting the discrete-Gaussian redundancy the lossy step leaves
// behind. The composition is bit-exact with respect to q (the lossy
// error budget does not grow).
func CompressQuantized(q *Matrix) (*Compressed, error) {
	bytes := make([]byte, len(q.Q))
	for i, v := range q.Q {
		bytes[i] = byte(int(v) + 128)
	}
	stream, err := rans.Encode(bytes, 0)
	if err != nil {
		return nil, fmt.Errorf("quant: %w", err)
	}
	return &Compressed{
		Rows: q.Rows, Cols: q.Cols,
		Scales: append([]float32(nil), q.Scales...),
		Stream: stream,
	}, nil
}

// Decompress reconstructs the quantized matrix exactly.
func (c *Compressed) Decompress() (*Matrix, error) {
	bytes, err := c.Stream.Decode()
	if err != nil {
		return nil, fmt.Errorf("quant: %w", err)
	}
	if len(bytes) != c.Rows*c.Cols {
		return nil, fmt.Errorf("quant: decoded %d values for %d×%d", len(bytes), c.Rows, c.Cols)
	}
	q := &Matrix{
		Rows: c.Rows, Cols: c.Cols,
		Q:      make([]int8, len(bytes)),
		Scales: append([]float32(nil), c.Scales...),
	}
	for i, b := range bytes {
		q.Q[i] = int8(int(b) - 128)
	}
	return q, nil
}

// SizeBytes returns the doubly compressed footprint.
func (c *Compressed) SizeBytes() int { return c.Stream.SizeBytes() + 4*len(c.Scales) }

// BitsPerElement returns the effective storage per weight after both
// stages.
func (c *Compressed) BitsPerElement() float64 {
	return 8 * float64(c.SizeBytes()) / float64(c.Rows*c.Cols)
}
