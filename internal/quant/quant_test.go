package quant

import (
	"math"
	"testing"
	"testing/quick"

	"zipserv/internal/bf16"
	"zipserv/internal/weights"
)

func TestQuantizeErrorBound(t *testing.T) {
	w := weights.Gaussian(128, 256, 0.02, 1)
	q, err := Quantize(w)
	if err != nil {
		t.Fatal(err)
	}
	gotMax, bound := q.MaxAbsError(w)
	if gotMax > bound {
		t.Errorf("max error %.3g exceeds bound %.3g", gotMax, bound)
	}
	if gotMax == 0 {
		t.Error("quantization reports zero error on random weights — suspicious")
	}
	if bpe := q.BitsPerElement(); bpe < 8 || bpe > 8.5 {
		t.Errorf("W8 bits/element %.3f outside [8, 8.5]", bpe)
	}
}

func TestQuantizePerRowScales(t *testing.T) {
	m := bf16.NewMatrix(2, 2)
	m.Set(0, 0, bf16.FromFloat32(1))
	m.Set(0, 1, bf16.FromFloat32(-0.5))
	m.Set(1, 0, bf16.FromFloat32(100))
	m.Set(1, 1, bf16.FromFloat32(50))
	q, err := Quantize(m)
	if err != nil {
		t.Fatal(err)
	}
	// Row maxima map to ±127 exactly.
	if q.Q[0] != 127 || q.Q[2] != 127 {
		t.Errorf("row maxima quantize to %d/%d, want 127/127", q.Q[0], q.Q[2])
	}
	if q.Scales[1] <= q.Scales[0] {
		t.Error("second row must have a larger scale")
	}
}

func TestQuantizeZeroRow(t *testing.T) {
	m := bf16.NewMatrix(3, 4)
	m.Set(1, 2, bf16.FromFloat32(2)) // only row 1 is non-zero
	q, err := Quantize(m)
	if err != nil {
		t.Fatal(err)
	}
	if q.Scales[0] != 0 || q.Scales[2] != 0 {
		t.Error("all-zero rows must have scale 0")
	}
	deq := q.Dequantize()
	for c := 0; c < 4; c++ {
		if deq.At(0, c).Float32() != 0 || deq.At(2, c).Float32() != 0 {
			t.Error("zero rows must dequantize to zero")
		}
	}
	if deq.At(1, 2).Float32() != 2 {
		t.Errorf("row max dequantized to %g, want 2", deq.At(1, 2).Float32())
	}
}

func TestQuantizeRejectsNonFinite(t *testing.T) {
	m := bf16.NewMatrix(2, 2)
	m.Set(0, 0, bf16.FromBits(0x7FC0)) // NaN
	if _, err := Quantize(m); err == nil {
		t.Error("NaN weight accepted")
	}
	m.Set(0, 0, bf16.FromBits(0x7F80)) // +Inf
	if _, err := Quantize(m); err == nil {
		t.Error("Inf weight accepted")
	}
	if _, err := Quantize(&bf16.Matrix{}); err == nil {
		t.Error("empty matrix accepted")
	}
}

func TestQuantizeIdempotent(t *testing.T) {
	// Quantizing the dequantized matrix reproduces the same codes:
	// the lossy step is a projection.
	w := weights.Gaussian(64, 64, 0.02, 2)
	q1, err := Quantize(w)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Quantize(q1.Dequantize())
	if err != nil {
		t.Fatal(err)
	}
	diffs := 0
	for i := range q1.Q {
		if q1.Q[i] != q2.Q[i] {
			diffs++
		}
	}
	// BF16 rounding of the dequantized values can nudge a handful of
	// codes by one step; the projection must be essentially stable.
	if frac := float64(diffs) / float64(len(q1.Q)); frac > 0.02 {
		t.Errorf("%.2f%% of codes changed on requantization, want < 2%%", frac*100)
	}
}

func TestResidualRedundancyCompresses(t *testing.T) {
	// §7: int8 weights from Gaussian BF16 keep a discrete-Gaussian
	// shape (σ_q ≈ 127/maxAbsZ ≈ 35–45 ⇒ entropy ≈ 7.2–7.6 bits), so
	// lossless coding on top of W8 gains a further ~5–12% with zero
	// extra error.
	w := weights.Gaussian(256, 256, 0.02, 3)
	q, err := Quantize(w)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := CompressQuantized(q)
	if err != nil {
		t.Fatal(err)
	}
	if gain := float64(q.SizeBytes()) / float64(cq.SizeBytes()); gain < 1.05 {
		t.Errorf("residual-redundancy gain %.3f < 1.05", gain)
	}
	if bpe := cq.BitsPerElement(); bpe >= 8 {
		t.Errorf("composite bits/element %.2f, want < 8", bpe)
	}

	back, err := cq.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Q) != len(q.Q) {
		t.Fatal("decompressed length mismatch")
	}
	for i := range q.Q {
		if back.Q[i] != q.Q[i] {
			t.Fatalf("int8 stream not bit-exact at %d", i)
		}
	}
	for r := range q.Scales {
		if back.Scales[r] != q.Scales[r] {
			t.Fatalf("scale %d not preserved", r)
		}
	}
	// Composition does not grow the lossy error budget.
	e1, _ := q.MaxAbsError(w)
	e2, _ := back.MaxAbsError(w)
	if e1 != e2 {
		t.Errorf("error changed through lossless stage: %.3g vs %.3g", e1, e2)
	}
}

func TestCompressedDecompressRejectsBadShape(t *testing.T) {
	w := weights.Gaussian(32, 32, 0.02, 4)
	q, err := Quantize(w)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := CompressQuantized(q)
	if err != nil {
		t.Fatal(err)
	}
	cq.Rows = 999 // shape no longer matches the stream
	if _, err := cq.Decompress(); err == nil {
		t.Error("mismatched shape accepted")
	}
}

func TestQuickQuantizeBounded(t *testing.T) {
	// Property: for any finite Gaussian weights, every reconstruction
	// error is within the per-row bound.
	f := func(seed int64, sigmaSel uint8) bool {
		sigma := 0.005 + float64(sigmaSel)/512.0
		w := weights.Gaussian(32, 48, sigma, seed)
		q, err := Quantize(w)
		if err != nil {
			return false
		}
		gotMax, bound := q.MaxAbsError(w)
		return gotMax <= bound+1e-12 && !math.IsNaN(gotMax)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
