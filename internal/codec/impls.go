package codec

import (
	"fmt"

	"zipserv/internal/bf16"
	"zipserv/internal/core"
	"zipserv/internal/huffman"
	"zipserv/internal/rans"
)

// ZipServ adapts the TCA-TBE codec (internal/core) to the Codec
// interface.
type ZipServ struct {
	// Opts overrides the default TCA-TBE options when non-zero.
	Opts core.Options
}

// Name implements Codec.
func (ZipServ) Name() string { return NameZipServ }

// Compress implements Codec.
func (z ZipServ) Compress(m *bf16.Matrix) (Blob, error) {
	opts := z.Opts
	if opts.CodewordBits == 0 {
		opts = core.DefaultOptions()
	}
	cm, err := core.CompressWithOptions(m, opts)
	if err != nil {
		return nil, err
	}
	return &tbeBlob{cm: cm, origBytes: m.SizeBytes()}, nil
}

type tbeBlob struct {
	cm        *core.Compressed
	origBytes int
}

func (b *tbeBlob) Codec() string                     { return NameZipServ }
func (b *tbeBlob) Decompress() (*bf16.Matrix, error) { return core.Decompress(b.cm) }
func (b *tbeBlob) SizeBytes() int                    { return b.cm.SizeBytes() }
func (b *tbeBlob) OriginalBytes() int                { return b.origBytes }

// TBE exposes the underlying TCA-TBE structure for fused-kernel
// consumers (ZipGEMM needs direct bitmap/buffer access, not a
// materialised matrix).
func (b *tbeBlob) TBE() *core.Compressed { return b.cm }

// TBEOf extracts the TCA-TBE representation from a Blob if it has one.
func TBEOf(b Blob) (*core.Compressed, bool) {
	t, ok := b.(interface{ TBE() *core.Compressed })
	if !ok {
		return nil, false
	}
	return t.TBE(), true
}

// DFloat11 is the Huffman-over-exponents baseline: the 8-bit exponent
// stream is entropy coded, the sign/mantissa byte is stored raw —
// "Dynamic-Length Float" with 11-ish effective bits per weight.
type DFloat11 struct{}

// Name implements Codec.
func (DFloat11) Name() string { return NameDFloat11 }

// Compress implements Codec.
func (DFloat11) Compress(m *bf16.Matrix) (Blob, error) {
	exps, signMant := splitStreams(m)
	stream, err := huffman.Encode(exps, huffman.DefaultChunkSymbols)
	if err != nil {
		return nil, fmt.Errorf("dfloat11: %w", err)
	}
	return &huffBlob{rows: m.Rows, cols: m.Cols, stream: stream, signMant: signMant}, nil
}

type huffBlob struct {
	rows, cols int
	stream     *huffman.Stream
	signMant   []byte
}

func (b *huffBlob) Codec() string      { return NameDFloat11 }
func (b *huffBlob) OriginalBytes() int { return 2 * b.rows * b.cols }
func (b *huffBlob) SizeBytes() int     { return b.stream.SizeBytes() + len(b.signMant) }

func (b *huffBlob) Decompress() (*bf16.Matrix, error) {
	exps, err := b.stream.Decode()
	if err != nil {
		return nil, fmt.Errorf("dfloat11: %w", err)
	}
	return joinStreams(b.rows, b.cols, exps, b.signMant)
}

// DietGPU is the GPU-native rANS baseline with fine-grained chunking
// (many small per-thread states).
type DietGPU struct{}

// Name implements Codec.
func (DietGPU) Name() string { return NameDietGPU }

// Compress implements Codec.
func (DietGPU) Compress(m *bf16.Matrix) (Blob, error) {
	exps, signMant := splitStreams(m)
	stream, err := rans.Encode(exps, rans.DefaultChunkSymbols)
	if err != nil {
		return nil, fmt.Errorf("dietgpu: %w", err)
	}
	return &ransBlob{
		name: NameDietGPU, rows: m.Rows, cols: m.Cols,
		stream: stream, signMant: signMant,
	}, nil
}

// NvComp is the general-purpose rANS baseline: coarser chunks, plus
// the framing overhead of a generic (non-BF16-aware) library container
// around each compressed buffer.
type NvComp struct{}

// nvCompFrameOverhead models nvCOMP's per-buffer manifest: format id,
// uncompressed size, chunk table and alignment padding.
const nvCompFrameOverhead = 256

// Name implements Codec.
func (NvComp) Name() string { return NameNvComp }

// Compress implements Codec.
func (NvComp) Compress(m *bf16.Matrix) (Blob, error) {
	exps, signMant := splitStreams(m)
	stream, err := rans.Encode(exps, 65536)
	if err != nil {
		return nil, fmt.Errorf("nvcomp: %w", err)
	}
	return &ransBlob{
		name: NameNvComp, rows: m.Rows, cols: m.Cols,
		stream: stream, signMant: signMant, extraBytes: nvCompFrameOverhead,
	}, nil
}

type ransBlob struct {
	name       string
	rows, cols int
	stream     *rans.Stream
	signMant   []byte
	extraBytes int
}

func (b *ransBlob) Codec() string      { return b.name }
func (b *ransBlob) OriginalBytes() int { return 2 * b.rows * b.cols }
func (b *ransBlob) SizeBytes() int {
	return b.stream.SizeBytes() + len(b.signMant) + b.extraBytes
}

func (b *ransBlob) Decompress() (*bf16.Matrix, error) {
	exps, err := b.stream.Decode()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", b.name, err)
	}
	return joinStreams(b.rows, b.cols, exps, b.signMant)
}
