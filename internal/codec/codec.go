// Package codec defines the common interface over all lossless BF16
// weight codecs evaluated in the ZipServ paper and provides the three
// baseline implementations:
//
//   - ZipServ: the TCA-TBE format (internal/core) — fixed-length,
//     bitmap-based, SIMT-friendly;
//   - DFloat11: canonical Huffman over the exponent stream with raw
//     sign/mantissa bytes (Zhang et al., the strongest lossless
//     baseline of §6);
//   - DietGPU: chunked rANS over the exponent stream (Johnson, the
//     GPU-native ANS baseline);
//   - NvComp: rANS with the coarser chunking and generic framing of a
//     general-purpose library (NVIDIA nvCOMP, which lacks native BF16
//     support — the paper reconstructs BF16 around it, §6.1).
//
// Every codec is lossless over arbitrary bit patterns (including NaN
// payloads), so the paper's speed comparisons are between
// equal-fidelity systems. The codec Name doubles as the key into the
// GPU cost model's per-pipeline efficiency table.
package codec

import (
	"fmt"
	"sort"
	"sync"

	"zipserv/internal/bf16"
)

// Canonical codec names, shared with the GPU cost model.
const (
	NameZipServ  = "zipserv-tbe"
	NameDFloat11 = "dfloat11"
	NameDietGPU  = "dietgpu"
	NameNvComp   = "nvcomp"
)

// Codec compresses BF16 weight matrices losslessly.
type Codec interface {
	// Name returns the canonical codec identifier.
	Name() string
	// Compress encodes m; the result decompresses bit-exactly.
	Compress(m *bf16.Matrix) (Blob, error)
}

// Blob is a compressed weight matrix.
type Blob interface {
	// Codec returns the name of the codec that produced the blob.
	Codec() string
	// Decompress reconstructs the original matrix bit-for-bit.
	Decompress() (*bf16.Matrix, error)
	// SizeBytes returns the compressed footprint including metadata.
	SizeBytes() int
	// OriginalBytes returns the uncompressed footprint.
	OriginalBytes() int
}

// Ratio returns OriginalBytes / SizeBytes for b.
func Ratio(b Blob) float64 {
	return float64(b.OriginalBytes()) / float64(b.SizeBytes())
}

var (
	mu       sync.RWMutex
	registry = map[string]func() Codec{}
)

// Register installs a codec constructor under its name. It panics on
// duplicates, which would indicate two packages claiming one identity.
func Register(name string, ctor func() Codec) {
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("codec: duplicate registration of %q", name))
	}
	registry[name] = ctor
}

// New returns a fresh codec instance by name.
func New(name string) (Codec, error) {
	mu.RLock()
	ctor, ok := registry[name]
	mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("codec: unknown codec %q (have %v)", name, Names())
	}
	return ctor(), nil
}

// Names lists all registered codecs in sorted order.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register(NameZipServ, func() Codec { return ZipServ{} })
	Register(NameDFloat11, func() Codec { return DFloat11{} })
	Register(NameDietGPU, func() Codec { return DietGPU{} })
	Register(NameNvComp, func() Codec { return NvComp{} })
}

// splitStreams separates a BF16 matrix into its exponent byte stream
// and its packed sign/mantissa byte stream — the decomposition every
// exponent-entropy codec (DFloat11, DietGPU, nvCOMP-wrapped) uses.
func splitStreams(m *bf16.Matrix) (exps, signMant []byte) {
	n := m.NumElements()
	exps = make([]byte, n)
	signMant = make([]byte, n)
	for i, w := range m.Data {
		exps[i] = w.Exponent()
		signMant[i] = w.PackSignMantissa()
	}
	return exps, signMant
}

// joinStreams reassembles a matrix from the two streams.
func joinStreams(rows, cols int, exps, signMant []byte) (*bf16.Matrix, error) {
	if len(exps) != rows*cols || len(signMant) != rows*cols {
		return nil, fmt.Errorf("codec: stream lengths %d/%d do not match %d×%d", len(exps), len(signMant), rows, cols)
	}
	m := bf16.NewMatrix(rows, cols)
	for i := range m.Data {
		sign, mant := bf16.UnpackSignMantissa(signMant[i])
		m.Data[i] = bf16.Assemble(sign, exps[i], mant)
	}
	return m, nil
}
