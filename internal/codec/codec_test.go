package codec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"zipserv/internal/bf16"
)

func gaussianMatrix(t testing.TB, rows, cols int, sigma float64, seed int64) *bf16.Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := bf16.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = bf16.FromFloat32(float32(rng.NormFloat64() * sigma))
	}
	return m
}

func TestRegistryHasAllFour(t *testing.T) {
	want := []string{NameDFloat11, NameDietGPU, NameNvComp, NameZipServ}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestNewUnknownCodec(t *testing.T) {
	if _, err := New("zstd"); err == nil {
		t.Error("unknown codec accepted")
	}
}

func TestAllCodecsLosslessOnGaussian(t *testing.T) {
	// Invariant 7 of DESIGN.md: every codec in the comparison is
	// bit-exact, so speed comparisons are between equal-fidelity
	// systems.
	m := gaussianMatrix(t, 128, 192, 0.02, 1)
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			c, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			if c.Name() != name {
				t.Errorf("Name() = %q, want %q", c.Name(), name)
			}
			blob, err := c.Compress(m)
			if err != nil {
				t.Fatal(err)
			}
			if blob.Codec() != name {
				t.Errorf("blob.Codec() = %q, want %q", blob.Codec(), name)
			}
			got, err := blob.Decompress()
			if err != nil {
				t.Fatal(err)
			}
			if !m.Equal(got) {
				t.Errorf("%s is not bit-exact at index %d", name, m.FirstDiff(got))
			}
			if blob.OriginalBytes() != m.SizeBytes() {
				t.Errorf("OriginalBytes = %d, want %d", blob.OriginalBytes(), m.SizeBytes())
			}
		})
	}
}

func TestAllCodecsLosslessOnAdversarialBits(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := bf16.NewMatrix(77, 91)
	for i := range m.Data {
		m.Data[i] = bf16.FromBits(uint16(rng.Intn(1 << 16)))
	}
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			c, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			blob, err := c.Compress(m)
			if err != nil {
				t.Fatal(err)
			}
			got, err := blob.Decompress()
			if err != nil {
				t.Fatal(err)
			}
			if !m.Equal(got) {
				t.Errorf("%s mangled adversarial bit patterns", name)
			}
		})
	}
}

func TestCompressionRatiosOrdering(t *testing.T) {
	// On Gaussian weights every codec should land in the 1.3–1.6×
	// band (§3.1: theoretical bound 1.51×, DFloat11 reports ~70%
	// size = 1.43×). The entropy coders should be at or above
	// ZipServ's fixed-length ratio, and nvCOMP pays framing overhead
	// relative to DietGPU.
	m := gaussianMatrix(t, 512, 512, 0.02, 3)
	ratios := map[string]float64{}
	for _, name := range Names() {
		c, _ := New(name)
		blob, err := c.Compress(m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ratios[name] = Ratio(blob)
	}
	t.Logf("ratios: %v", ratios)
	for name, r := range ratios {
		if r < 1.30 || r > 1.65 {
			t.Errorf("%s ratio %.3f outside [1.30, 1.65]", name, r)
		}
	}
	// TCA-TBE's fixed-length design gives up only a little ratio vs
	// entropy coding (§4.2: 11.3 bits/elem vs 10.6 bound ⇒ ≤10%).
	if ratios[NameZipServ] < ratios[NameDFloat11]*0.88 {
		t.Errorf("ZipServ ratio %.3f more than 12%% below DFloat11 %.3f",
			ratios[NameZipServ], ratios[NameDFloat11])
	}
}

func TestTBEOf(t *testing.T) {
	m := gaussianMatrix(t, 64, 64, 0.02, 4)
	z, _ := New(NameZipServ)
	blob, err := z.Compress(m)
	if err != nil {
		t.Fatal(err)
	}
	cm, ok := TBEOf(blob)
	if !ok || cm == nil {
		t.Fatal("TBEOf failed on a ZipServ blob")
	}
	if cm.Grid.Rows != 64 || cm.Grid.Cols != 64 {
		t.Errorf("TBE grid %dx%d, want 64x64", cm.Grid.Rows, cm.Grid.Cols)
	}
	d, _ := New(NameDFloat11)
	hb, err := d.Compress(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := TBEOf(hb); ok {
		t.Error("TBEOf succeeded on a Huffman blob")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	Register(NameZipServ, func() Codec { return ZipServ{} })
}

func TestQuickAllCodecsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		m := gaussianMatrix(t, 64, 64, 0.05, seed)
		for _, name := range Names() {
			c, err := New(name)
			if err != nil {
				return false
			}
			blob, err := c.Compress(m)
			if err != nil {
				return false
			}
			got, err := blob.Decompress()
			if err != nil || !m.Equal(got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
