// Benchmark harness: one testing.B benchmark per paper figure/table
// (see DESIGN.md §3 for the index). The figure benchmarks execute the
// same drivers as cmd/zipserv-figures, so `go test -bench=.` both
// times the reproduction machinery and regenerates every result; the
// Benchmark*Functional entries measure the real codec and kernel
// implementations on this machine.
package zipserv_test

import (
	"testing"

	"zipserv"
	"zipserv/internal/bench"
)

var tableSink *bench.Table

func BenchmarkFig01PipelineGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tableSink = bench.Fig01()
	}
}

func BenchmarkFig02ExponentDist(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tableSink = bench.Fig02()
	}
}

func BenchmarkFig05Roofline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tableSink = bench.Fig05()
	}
}

func BenchmarkFig11KernelSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tableSink = bench.Fig11("L40S")
	}
}

func BenchmarkFig11LayerWise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tableSink = bench.Fig11c()
	}
}

func BenchmarkFig12MicroAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tableSink = bench.Fig12()
	}
}

func BenchmarkFig13Decompress(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tableSink = bench.Fig13()
	}
}

func BenchmarkFig14CrossGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tableSink = bench.Fig14()
	}
}

func BenchmarkFig15NSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tableSink = bench.Fig15()
	}
}

func BenchmarkFig16EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tableSink = bench.Fig16(true)
	}
}

func BenchmarkFig17Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tableSink = bench.Fig17()
	}
}

func BenchmarkFig18TrainingGPUs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tableSink = bench.Fig18()
	}
}

func BenchmarkE31Compressibility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tableSink = bench.E31()
	}
}

func BenchmarkE42CodewordLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tableSink = bench.E42()
	}
}

func BenchmarkE64Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tableSink = bench.E64()
	}
}

func BenchmarkE65Memory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tableSink = bench.E65()
	}
}

func BenchmarkE7LossyGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tableSink = bench.E7()
	}
}

func BenchmarkAblationBitmapLayout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tableSink = bench.AblationA1()
	}
}

func BenchmarkAblationCodewordLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tableSink = bench.AblationA2()
	}
}

func BenchmarkAblationStageAware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tableSink = bench.AblationA3()
	}
}

func BenchmarkAblationPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tableSink = bench.AblationA4()
	}
}

func BenchmarkAblationWindowSelect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tableSink = bench.AblationA5()
	}
}

// ---- Functional benchmarks: the real Go implementations ----

var (
	matSink  *zipserv.Matrix
	resSink  *zipserv.Result
	compSink *zipserv.Compressed
)

func benchWeights(b *testing.B, n int) *zipserv.Matrix {
	b.Helper()
	return zipserv.GaussianWeights(n, n, 0.02, 1)
}

func BenchmarkFunctionalCompress(b *testing.B) {
	w := benchWeights(b, 512)
	b.SetBytes(int64(w.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cw, err := zipserv.Compress(w)
		if err != nil {
			b.Fatal(err)
		}
		compSink = cw
	}
}

func BenchmarkFunctionalDecompress(b *testing.B) {
	w := benchWeights(b, 512)
	cw, err := zipserv.Compress(w)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(w.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := zipserv.Decompress(cw)
		if err != nil {
			b.Fatal(err)
		}
		matSink = m
	}
}

func BenchmarkFunctionalZipGEMM(b *testing.B) {
	w := benchWeights(b, 512)
	cw, err := zipserv.Compress(w)
	if err != nil {
		b.Fatal(err)
	}
	x := zipserv.NewMatrix(512, 32)
	for i := range x.Data {
		x.Data[i] = zipserv.FromFloat32(float32(i % 9))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y, err := zipserv.ZipGEMM(cw, x)
		if err != nil {
			b.Fatal(err)
		}
		resSink = y
	}
}

func BenchmarkFunctionalDenseGEMM(b *testing.B) {
	w := benchWeights(b, 512)
	x := zipserv.NewMatrix(512, 32)
	for i := range x.Data {
		x.Data[i] = zipserv.FromFloat32(float32(i % 9))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y, err := zipserv.GEMM(w, x)
		if err != nil {
			b.Fatal(err)
		}
		resSink = y
	}
}

func BenchmarkFunctionalBaselineCodecs(b *testing.B) {
	w := benchWeights(b, 256)
	for _, name := range zipserv.CodecNames() {
		c, err := zipserv.NewCodec(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(w.SizeBytes()))
			for i := 0; i < b.N; i++ {
				blob, err := c.Compress(w)
				if err != nil {
					b.Fatal(err)
				}
				m, err := blob.Decompress()
				if err != nil {
					b.Fatal(err)
				}
				matSink = m
			}
		})
	}
}

func BenchmarkE32WarpDivergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tableSink = bench.E32Divergence()
	}
}

func BenchmarkE7bLossyComposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tableSink = bench.E7b()
	}
}
