// Package zipserv is a pure-Go implementation of the ZipServ system
// (Fan et al., ASPLOS 2026): fast, memory-efficient, bit-exact LLM
// inference through hardware-aware lossless compression.
//
// The package exposes five layers, mirroring the paper:
//
//   - BF16 numerics and matrices (the weight substrate, §2.2);
//   - the TCA-TBE lossless codec — Compress/Decompress — with
//     constant-time, branch-free, popcount-addressed decoding (§4.2);
//   - GEMM kernels: the dense Reference, the fused ZipGEMM that
//     computes directly on compressed weights, and the decoupled
//     baseline pipeline (§4.3);
//   - lossless baseline codecs (DFloat11-style Huffman,
//     DietGPU/nvCOMP-style rANS) behind one Codec interface (§6.1);
//   - a serving simulator: GPU cost models for the paper's five
//     evaluation devices, a paged KV cache, and end-to-end engines for
//     the four serving stacks of §6.5;
//   - a live serving layer: a goroutine-based continuous-batching
//     scheduler (NewLiveServer) with bounded-queue admission control,
//     token-packed prefill, per-request streaming metrics (TTFT, TPOT,
//     queue wait) and aggregate goodput, exposed over HTTP by
//     cmd/zipserv-server as POST /v1/generate (429 on queue overflow,
//     NDJSON streaming) and GET /v1/stats;
//   - pluggable scheduling and sharded routing on top of it: admission
//     order is a LivePolicy ("fifo" by default, "priority" for
//     starvation-free interactive-before-batch classes, "slo" for
//     earliest-TTFT-deadline-first with preempt-and-requeue), and the
//     HTTP layer binds to a LiveBackend — either one server or a
//     LiveRouter sharding requests across N replicas by queue depth
//     and free KV blocks, with failover when a replica is full or
//     stopped.
//
// The live scheduler runs one engine loop goroutine per replica that,
// each iteration, admits queued requests in policy order against the
// paged KV-cache plan (conservative prompt+output reservation, so no
// sequence fails mid-flight — and so a preempted victim returns every
// block it held), prefills newcomers as one padding-free packed batch,
// runs one decode step over the whole running batch, and evicts
// finished sequences so their blocks fund the next admissions. The
// offline Serve trace replay drives the same state machine
// (engine.Stepper) with request-level padded prefill, which makes it
// the static-batch baseline the live loop is benchmarked against.
//
// Prefill is chunkable (Sarathi-style): LiveConfig.PrefillChunkTokens
// caps the prompt tokens mixed into each iteration, carrying partially
// prefilled sequences across iterations so one long prompt can never
// stall the decode batch's token cadence (TPOT); outputs are identical
// to monolithic prefill, only timing changes, and the worst
// inter-token stall appears in LiveStats.MaxDecodeGap. For sparse
// real-time traffic, LiveConfig.AdmissionWindow holds an idle
// scheduler's first arrival briefly so wall-clock bursts prefill as
// one batch, and LiveConfig.TimeScale paces the loop against the wall
// clock so live arrivals interleave with scheduling the way trace
// replays do.
//
// With LiveConfig.PrefixCache, prompt KV blocks are content-addressed
// and reference-counted (RadixAttention-style): requests carrying
// prompt token ids (LiveRequest.Prompt) that share a prompt prefix
// claim each other's blocks by reference instead of re-prefilling
// them, with copy-on-write protecting shared content and LRU eviction
// reclaiming refcount-zero cached blocks under pressure. Per-request
// reuse appears as LiveResult.CachedTokens and fleet-wide as
// LiveStats.PrefixHits / PrefixTokensSaved; outputs are byte-identical
// to cache-off, only TTFT and KV pressure improve. See
// docs/prefix-caching.md.
//
// LiveConfig.CompressedCache layers the paper's codec under that
// cache: a cached block whose last reference drops is frozen into the
// TCA-TBE CompressedStore and its physical block freed, while the
// content stays claimable — a later matching prompt thaws it
// bit-exactly into a fresh block, paying a decompress price the cost
// model charges into that prefill (LiveStats.DecompressClaims,
// CompressedKVBlocks, KVCompressionRatio). Cold prefix content then
// survives capacity pressure that would evict parked blocks. See
// docs/compressed-kv.md.
//
// Both knobs also close their loops adaptively: with
// LiveConfig.AdaptiveChunking the chunk budget is re-derived every
// iteration from the decode batch's step-time target
// (LiveConfig.TargetStepTime, the TPOT SLO) by inverting the engine
// cost model, and with LiveConfig.AdaptivePrefixCache the warm-pool
// bound follows observed hit rates and KV pressure instead of a static
// block count. The controllers' live operating points surface in
// LiveStats (ChunkBudget, StepTimeEWMA, CachePoolTarget and the
// controller EWMAs). See docs/adaptive-scheduling.md.
//
// Quick start:
//
//	w := zipserv.GaussianWeights(4096, 4096, 0.02, 1)
//	cw, _ := zipserv.Compress(w)               // lossless, ~1.4×
//	y, _ := zipserv.ZipGEMM(cw, activations)   // never decompresses W
//	back, _ := zipserv.Decompress(cw)          // bit-exact
//
// All results are bit-exact: ZipGEMM output equals dense GEMM on the
// original weights, bit for bit.
package zipserv

import (
	"io"

	"zipserv/internal/bf16"
	"zipserv/internal/checkpoint"
	"zipserv/internal/codec"
	"zipserv/internal/core"
	"zipserv/internal/engine"
	"zipserv/internal/gpu"
	"zipserv/internal/kvcache"
	"zipserv/internal/quant"
	"zipserv/internal/serve"
	"zipserv/internal/stats"
	"zipserv/internal/warp"
	"zipserv/internal/weights"
	"zipserv/internal/zipgemm"
)

// ---- BF16 numerics ----

// BF16 is a bfloat16 value (1 sign, 8 exponent, 7 mantissa bits).
type BF16 = bf16.BF16

// Matrix is a dense row-major BF16 matrix.
type Matrix = bf16.Matrix

// NewMatrix allocates a zeroed rows×cols BF16 matrix.
func NewMatrix(rows, cols int) *Matrix { return bf16.NewMatrix(rows, cols) }

// FromFloat32 converts with round-to-nearest-even.
func FromFloat32(f float32) BF16 { return bf16.FromFloat32(f) }

// GaussianWeights generates LLM-like N(0, σ²) BF16 weights with a
// deterministic seed (the Appendix-A weight model).
func GaussianWeights(rows, cols int, sigma float64, seed int64) *Matrix {
	return weights.Gaussian(rows, cols, sigma, seed)
}

// ---- TCA-TBE codec (the paper's core contribution) ----

// Compressed is a weight matrix in Tensor-Core-Aware Triple Bitmap
// Encoding.
type Compressed = core.Compressed

// CompressOptions configures the TCA-TBE compressor.
type CompressOptions = core.Options

// Compress encodes a BF16 matrix losslessly with the paper's default
// configuration (3-bit codewords over a contiguous 7-exponent window).
func Compress(m *Matrix) (*Compressed, error) { return core.Compress(m) }

// CompressWithOptions encodes with explicit codec options (codeword
// length 2–4, window vs top-frequency selection).
func CompressWithOptions(m *Matrix, opts CompressOptions) (*Compressed, error) {
	return core.CompressWithOptions(m, opts)
}

// Decompress reconstructs the original matrix bit-for-bit.
func Decompress(c *Compressed) (*Matrix, error) { return core.Decompress(c) }

// WriteCompressed serialises a compressed matrix (with CRC trailer).
func WriteCompressed(w io.Writer, c *Compressed) error {
	_, err := c.WriteTo(w)
	return err
}

// ReadCompressed deserialises and validates a compressed matrix.
func ReadCompressed(r io.Reader) (*Compressed, error) {
	var c Compressed
	if _, err := c.ReadFrom(r); err != nil {
		return nil, err
	}
	return &c, nil
}

// ---- GEMM kernels ----

// Result is an FP32 GEMM output.
type Result = zipgemm.Result

// GEMM computes Y = W·X densely (the cuBLAS-equivalent reference).
func GEMM(w, x *Matrix) (*Result, error) { return zipgemm.Reference(w, x) }

// ZipGEMM computes Y = W·X directly from the compressed weights —
// "load compressed, compute decompressed" (§4.3). The result is
// bit-identical to GEMM on the original matrix.
func ZipGEMM(cw *Compressed, x *Matrix) (*Result, error) { return zipgemm.Fused(cw, x) }

// DecoupledGEMM runs the baseline pipeline: decompress a codec blob
// fully, then run the dense GEMM (§3.3, Figure 4).
func DecoupledGEMM(blob Blob, x *Matrix) (*Result, error) { return zipgemm.Decoupled(blob, x) }

// ---- Codec registry (baselines of §6.1) ----

// Codec is a lossless BF16 weight codec.
type Codec = codec.Codec

// Blob is a compressed weight matrix produced by any Codec.
type Blob = codec.Blob

// Codec names available in the registry.
const (
	CodecZipServ  = codec.NameZipServ
	CodecDFloat11 = codec.NameDFloat11
	CodecDietGPU  = codec.NameDietGPU
	CodecNvComp   = codec.NameNvComp
)

// NewCodec returns a codec by name (CodecZipServ, CodecDFloat11,
// CodecDietGPU, CodecNvComp).
func NewCodec(name string) (Codec, error) { return codec.New(name) }

// CodecNames lists registered codecs.
func CodecNames() []string { return codec.Names() }

// ---- Analysis ----

// ExponentHistogram tallies the BF16 exponent field of a matrix
// (§3.1).
type ExponentHistogram = stats.Histogram

// AnalyzeExponents computes the exponent histogram of m.
func AnalyzeExponents(m *Matrix) ExponentHistogram { return stats.ExponentHistogram(m) }

// ---- Hardware model and serving ----

// GPUSpec describes a modelled accelerator.
type GPUSpec = gpu.Spec

// GPUByName returns the spec of a modelled device (RTX4090, L40S,
// RTX5090, A100, H800, AMX-SPR, MI300X).
func GPUByName(name string) (GPUSpec, error) { return gpu.ByName(name) }

// Model describes an LLM architecture from the §6.1 zoo.
type Model = weights.Model

// ModelByName returns a zoo model (e.g. "LLaMA3.1-8B").
func ModelByName(name string) (Model, error) { return weights.ByName(name) }

// Models returns the full eleven-model zoo.
func Models() []Model { return weights.Zoo() }

// ServingBackend identifies a serving stack (ZipServ, vLLM,
// Transformers, DFloat11).
type ServingBackend = engine.Backend

// Serving backends of Figure 16.
const (
	ServeZipServ      = engine.BackendZipServ
	ServeVLLM         = engine.BackendVLLM
	ServeTransformers = engine.BackendTransformers
	ServeDFloat11     = engine.BackendDFloat11
)

// ServingConfig configures an end-to-end serving simulation.
type ServingConfig = engine.Config

// ServingMetrics reports one serving run.
type ServingMetrics = engine.Metrics

// Engine simulates end-to-end LLM serving (§6.5).
type Engine = engine.Engine

// NewEngine builds a serving engine.
func NewEngine(cfg ServingConfig) (*Engine, error) { return engine.New(cfg) }

// ---- Paged KV cache ----

// KVManager is a paged KV-cache allocator (PagedAttention-style).
type KVManager = kvcache.Manager

// KVConfig sizes a KV cache.
type KVConfig = kvcache.Config

// NewKVManager builds a paged KV-cache manager.
func NewKVManager(cfg KVConfig) (*KVManager, error) { return kvcache.NewManager(cfg) }

// CompressedKVStore holds KV blocks in TCA-TBE form (§7 extension).
type CompressedKVStore = kvcache.CompressedStore

// NewCompressedKVStore returns an empty compressed KV store.
func NewCompressedKVStore() *CompressedKVStore { return kvcache.NewCompressedStore() }

// ---- Checkpoints (§7 extension: model checkpointing) ----

// CheckpointWriter assembles a multi-tensor compressed checkpoint.
type CheckpointWriter = checkpoint.Writer

// Checkpoint is a loaded checkpoint with lazy per-tensor access.
type Checkpoint = checkpoint.Checkpoint

// CheckpointStats reports a checkpoint write.
type CheckpointStats = checkpoint.Stats

// NewCheckpointWriter returns an empty checkpoint writer.
func NewCheckpointWriter() *CheckpointWriter { return checkpoint.NewWriter() }

// ReadCheckpoint parses a checkpoint stream (tensors stay compressed
// until requested).
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) { return checkpoint.Read(r) }

// ---- Continuous batching (trace-driven serving) ----

// ServeRequest is one request in a serving trace.
type ServeRequest = engine.Request

// ServeTraceStats aggregates a continuous-batching run.
type ServeTraceStats = engine.TraceStats

// RequestMetrics reports per-request TTFT and latency.
type RequestMetrics = engine.RequestMetrics

// SyntheticTrace generates a deterministic Poisson-arrival trace.
func SyntheticTrace(n int, ratePerSec float64, meanPrompt, meanOutput int, seed int64) []ServeRequest {
	return engine.SyntheticTrace(n, ratePerSec, meanPrompt, meanOutput, seed)
}

// ---- Live continuous-batching serving ----

// LiveServer is the live continuous-batching scheduler: requests enter
// a bounded admission queue and are batched at iteration granularity
// against the KV-cache plan.
type LiveServer = serve.Server

// LiveConfig configures a live server.
type LiveConfig = serve.Config

// LiveRequest is one live generation request.
type LiveRequest = serve.Request

// LiveTicket tracks an accepted live request (streaming events and the
// final result).
type LiveTicket = serve.Ticket

// LiveResult is the final per-request record (TTFT, TPOT, queue wait,
// latency).
type LiveResult = serve.Result

// LiveStats is an aggregate snapshot of the live scheduler.
type LiveStats = serve.Stats

// Live submission errors.
var (
	ErrLiveQueueFull = serve.ErrQueueFull
	ErrLiveStopped   = serve.ErrStopped
	ErrLiveNeverFits = serve.ErrNeverFits
)

// NewLiveServer builds a live continuous-batching server over an
// engine. Call Start to launch the scheduler goroutine and Stop for a
// graceful drain.
func NewLiveServer(cfg LiveConfig) (*LiveServer, error) { return serve.New(cfg) }

// ---- Scheduling policies and sharded routing ----

// LivePolicy orders admission in the live scheduler and selects
// preemption victims: who runs next, as a first-class pluggable
// decision. Built-ins: FIFO (default), priority (interactive before
// batch, starvation-free via aging) and slo
// (earliest-TTFT-deadline-first with preempt-and-requeue).
type LivePolicy = serve.Policy

// LiveClass is a request priority class for the priority policy.
type LiveClass = serve.Class

// The two request classes: latency-bound interactive traffic and
// throughput-bound batch traffic.
const (
	LiveClassInteractive = serve.ClassInteractive
	LiveClassBatch       = serve.ClassBatch
)

// LivePolicyByName returns a built-in policy: "fifo", "priority" or
// "slo".
func LivePolicyByName(name string) (LivePolicy, error) { return serve.PolicyByName(name) }

// LivePolicyNames lists the built-in admission policies.
func LivePolicyNames() []string { return serve.PolicyNames() }

// LiveBackend is the serving surface the HTTP layer binds to — one
// live server or a sharded router of replicas: where requests run,
// behind one stable interface.
type LiveBackend = serve.Backend

// LiveRouter shards live traffic across N replica backends with
// capacity-aware least-loaded dispatch (queue depth and free KV blocks
// from each replica's stats snapshot) and failover when a replica is
// full or stopped.
type LiveRouter = serve.Router

// NewLiveRouter builds a router over the given replicas (at least
// one). A router is itself a LiveBackend, so deployments nest.
func NewLiveRouter(replicas ...LiveBackend) (*LiveRouter, error) {
	return serve.NewRouter(replicas...)
}

// LiveAffinityConfig tunes a router's prefix-affinity dispatch
// (LiveRouter.EnableAffinity): requests steer toward the replica whose
// prefix-trie digest best overlaps their prompt tokens, spilling to
// least-loaded outside a bounded load band. The zero value selects
// defaults for every knob. See docs/routing.md.
type LiveAffinityConfig = serve.AffinityConfig

// LivePrefixSummary is the compact prefix-trie digest a replica
// publishes in its stats (LiveStats.PrefixSummary) for affinity
// routing: exact first-block fingerprints plus a bloom filter over the
// deeper trie.
type LivePrefixSummary = kvcache.PrefixSummary

// LiveArrivalNow marks a LiveRequest as arriving at the scheduler's
// current virtual clock — the natural arrival for interactively
// submitted live traffic.
const LiveArrivalNow = serve.ArrivalNow

// LivePool assigns a replica to a disaggregated serving tier
// (LiveConfig.Pool): "prefill" replicas run prompts to their first
// token and hand the sequence off, "decode" replicas continue the
// decodes, "mixed" (or empty) serves co-located.
type LivePool = serve.PoolRole

// The disaggregation pool roles.
const (
	LivePoolPrefill = serve.PoolPrefill
	LivePoolDecode  = serve.PoolDecode
	LivePoolMixed   = serve.PoolMixed
)

// NewPooledLiveRouter builds a disaggregated prefill/decode router over
// pool-labelled live servers: every prompt runs to its first token on a
// prefill replica, then the mid-generation sequence — its KV compressed
// through the TCA-TBE codec — moves to the least-loaded decode replica,
// which verifies it bit-exactly (deduplicating prompt blocks its prefix
// trie already holds) and decodes it to completion. Handoffs fail over
// to another decode replica or back to co-located serving, and
// submissions spill to the decode replicas when every prefill replica
// is unavailable. See docs/disaggregation.md.
func NewPooledLiveRouter(servers ...*LiveServer) (*LiveRouter, error) {
	return serve.NewPooledRouter(servers...)
}

// ---- Fault injection and health-aware routing ----

// LiveFaultPlan is a deterministic fault-injection script: scripted
// crashes, hangs, slowdowns, codec failures, handoff drops and stats
// staleness, addressed to replicas by fleet index and triggered by each
// replica's own virtual clock, so a chaos run replays bit-identically.
// Project it per replica with Replica(i) into LiveConfig.Faults. See
// docs/robustness.md for the plan DSL.
type LiveFaultPlan = serve.FaultPlan

// LiveFaultEvent is one scripted failure in a LiveFaultPlan.
type LiveFaultEvent = serve.FaultEvent

// LiveReplicaFaults is one replica's runtime projection of a fault
// plan (LiveConfig.Faults). Never share one between servers.
type LiveReplicaFaults = serve.ReplicaFaults

// ParseLiveFaultPlan parses the fault-plan DSL (one directive per
// line: `crash replica=1 at=0.5`, `slow replica=0 at=0 factor=8`, …).
func ParseLiveFaultPlan(text string) (*LiveFaultPlan, error) {
	return serve.ParseFaultPlan(text)
}

// RandomLiveFaultPlan generates a deterministic chaos plan from a seed
// for an n-replica fleet with fault triggers inside [0, horizon).
func RandomLiveFaultPlan(seed int64, n int, horizon float64) *LiveFaultPlan {
	return serve.RandomFaultPlan(seed, n, horizon)
}

// LiveHealthConfig tunes a router's health state machine and retry
// policy (LiveRouter.EnableHealth): per-replica breakers eject failing
// replicas from dispatch, half-open probes re-admit them, and requests
// lost to replica deaths resurrect elsewhere under a bounded retry
// budget. The zero value selects defaults. See docs/robustness.md.
type LiveHealthConfig = serve.HealthConfig

// ErrLiveRetriesExhausted is delivered to a request whose resurrection
// retry budget ran out before any replica could complete it.
var ErrLiveRetriesExhausted = serve.ErrRetriesExhausted

// ---- Warp-level divergence analysis (§3.2) ----

// WarpReport summarises a lockstep warp execution.
type WarpReport = warp.Report

// SimulateTBEDecodeWarp runs the TCA-TBE decoder for one FragTile on a
// simulated 32-lane warp (divergence-free by construction).
func SimulateTBEDecodeWarp(cm *Compressed, frag int) (WarpReport, error) {
	return warp.SimulateTBEDecode(cm, frag)
}

// ---- Quantization composition (§7: orthogonal to lossy methods) ----

// QuantizedMatrix is a per-row symmetric int8 quantization of BF16
// weights (the W8A16 regime).
type QuantizedMatrix = quant.Matrix

// QuantizedCompressed is a quantized matrix whose int8 stream has been
// losslessly entropy coded on top (no additional error).
type QuantizedCompressed = quant.Compressed

// Quantize converts BF16 weights to per-row int8 (lossy, bounded
// error).
func Quantize(m *Matrix) (*QuantizedMatrix, error) { return quant.Quantize(m) }

// CompressQuantized losslessly compresses the int8 stream of a
// quantized matrix, exploiting its residual redundancy.
func CompressQuantized(q *QuantizedMatrix) (*QuantizedCompressed, error) {
	return quant.CompressQuantized(q)
}
