package zipserv_test

import (
	"fmt"

	"zipserv"
)

// ExampleCompress demonstrates the lossless round trip on LLM-like
// weights: ~1.43× smaller, bit-for-bit identical after decompression.
func ExampleCompress() {
	w := zipserv.GaussianWeights(256, 256, 0.02, 1)
	cw, err := zipserv.Compress(w)
	if err != nil {
		panic(err)
	}
	back, err := zipserv.Decompress(cw)
	if err != nil {
		panic(err)
	}
	fmt.Printf("ratio > 1.4: %v\n", cw.CompressionRatio() > 1.4)
	fmt.Printf("bit-exact: %v\n", w.Equal(back))
	// Output:
	// ratio > 1.4: true
	// bit-exact: true
}

// ExampleZipGEMM shows the fused kernel computing on compressed
// weights with a result identical to the dense GEMM.
func ExampleZipGEMM() {
	w := zipserv.GaussianWeights(128, 128, 0.02, 2)
	cw, err := zipserv.Compress(w)
	if err != nil {
		panic(err)
	}
	x := zipserv.NewMatrix(128, 4)
	for i := range x.Data {
		x.Data[i] = zipserv.FromFloat32(1)
	}
	fused, err := zipserv.ZipGEMM(cw, x)
	if err != nil {
		panic(err)
	}
	dense, err := zipserv.GEMM(w, x)
	if err != nil {
		panic(err)
	}
	fmt.Println(fused.Equal(dense))
	// Output:
	// true
}

// ExampleNewCodec compares the lossless baselines on the same weights.
func ExampleNewCodec() {
	w := zipserv.GaussianWeights(128, 128, 0.02, 3)
	for _, name := range zipserv.CodecNames() {
		c, err := zipserv.NewCodec(name)
		if err != nil {
			panic(err)
		}
		blob, err := c.Compress(w)
		if err != nil {
			panic(err)
		}
		back, err := blob.Decompress()
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s lossless: %v\n", name, w.Equal(back))
	}
	// Output:
	// dfloat11 lossless: true
	// dietgpu lossless: true
	// nvcomp lossless: true
	// zipserv-tbe lossless: true
}

// ExampleNewKVManager drives the paged KV-cache allocator.
func ExampleNewKVManager() {
	mgr, err := zipserv.NewKVManager(zipserv.KVConfig{BlockTokens: 16, TotalBlocks: 4})
	if err != nil {
		panic(err)
	}
	if err := mgr.Allocate(1, 40); err != nil { // 40 tokens → 3 blocks
		panic(err)
	}
	fmt.Printf("used=%d free=%d\n", mgr.UsedBlocks(), mgr.FreeBlocks())
	if err := mgr.Free(1); err != nil {
		panic(err)
	}
	fmt.Printf("after free: %d free\n", mgr.FreeBlocks())
	// Output:
	// used=3 free=1
	// after free: 4 free
}

// ExampleNewEngine simulates one serving run on a modelled GPU.
func ExampleNewEngine() {
	model, err := zipserv.ModelByName("LLaMA3.1-8B")
	if err != nil {
		panic(err)
	}
	dev, err := zipserv.GPUByName("RTX4090")
	if err != nil {
		panic(err)
	}
	eng, err := zipserv.NewEngine(zipserv.ServingConfig{
		Model: model, Device: dev, Backend: zipserv.ServeZipServ,
	})
	if err != nil {
		panic(err)
	}
	m, err := eng.Run(8, 64, 128)
	if err != nil {
		panic(err)
	}
	fmt.Printf("finished %d requests in one wave: %v\n", m.Batch, m.Waves == 1)
	// Output:
	// finished 8 requests in one wave: true
}

// ExampleAnalyzeExponents measures the §3.1 statistics on generated
// weights.
func ExampleAnalyzeExponents() {
	w := zipserv.GaussianWeights(512, 512, 0.02, 4)
	h := zipserv.AnalyzeExponents(w)
	fmt.Printf("entropy in [2.4, 2.8]: %v\n", h.Entropy() > 2.4 && h.Entropy() < 2.8)
	fmt.Printf("top-7 contiguous: %v\n", h.TopKIsContiguous(7))
	// Output:
	// entropy in [2.4, 2.8]: true
	// top-7 contiguous: true
}
